package fault

import (
	"sync"
	"time"

	"qntn/internal/netsim"
)

// Model decorates a link model with a fault schedule: links touching a
// failed platform vanish, and ground↔relay FSO links are attenuated (or
// severed) during weather blackouts. The per-pair Evaluate is the reference
// semantics; BeginStep batches the schedule lookups once per instant and
// delegates to the inner model's own step evaluator when it has one, so the
// decorated model keeps the underlying fast path (per-node caches,
// prefilters, arena reuse) intact.
type Model struct {
	inner netsim.LinkModel
	sched *Schedule
	// minEta re-gates an attenuated link against the scenario's
	// transmissivity threshold, mirroring the inner model's own gate.
	minEta float64
	pool   sync.Pool
}

// NewModel wraps inner with the schedule. minEta is the transmissivity
// threshold attenuated links are re-gated against (pass the scenario's
// gating threshold; zero keeps any positive attenuated link).
func NewModel(inner netsim.LinkModel, sched *Schedule, minEta float64) *Model {
	return &Model{inner: inner, sched: sched, minEta: minEta}
}

// Inner returns the decorated model.
func (m *Model) Inner() netsim.LinkModel { return m.inner }

// Schedule returns the fault schedule.
func (m *Model) Schedule() *Schedule { return m.sched }

// crossesWeather reports whether a link between the two kinds traverses the
// lower atmosphere: exactly one endpoint on the ground. Fiber (both ground)
// and space-space links are weather-immune.
func crossesWeather(ka, kb netsim.NodeKind) bool {
	return (ka == netsim.Ground) != (kb == netsim.Ground)
}

// ApplyWeather attenuates eta during a blackout and re-gates it. The second
// return is false when the blackout severs the link. Exported so the
// event-driven coverage engine can replicate the decorator's semantics when
// it evaluates pairs outside the BeginStep machinery.
//
//qntn:hotpath
func (m *Model) ApplyWeather(eta float64) (float64, bool) {
	eta *= m.sched.cfg.WeatherAttenuation
	if eta <= 0 || eta < m.minEta {
		return 0, false
	}
	return eta, true
}

// Evaluate implements netsim.LinkModel.
func (m *Model) Evaluate(a, b netsim.Node, t time.Duration) (float64, bool) {
	if m.sched.Down(a.ID(), t) || m.sched.Down(b.ID(), t) {
		return 0, false
	}
	eta, ok := m.inner.Evaluate(a, b, t)
	if !ok {
		return 0, false
	}
	if m.sched.Weather(t) && crossesWeather(a.Kind(), b.Kind()) {
		return m.ApplyWeather(eta)
	}
	return eta, true
}

// BeginStep implements netsim.StepModel: per-node down bits and the weather
// bit are resolved once per instant, then pair queries run against the
// inner model's evaluator (its batched one when available).
//
//qntn:hotpath one call per topology step of every sweep worker
func (m *Model) BeginStep(nodes []netsim.Node, t time.Duration) netsim.StepEvaluator {
	se, _ := m.pool.Get().(*stepEval)
	if se == nil {
		//qntn:coldpath pool miss: first checkout constructs the evaluator
		se = &stepEval{m: m}
	}
	if !se.sameNodes(nodes) {
		//qntn:coldpath static caches rebuild only when the node set changes
		se.init(nodes)
	}
	se.reset(t)
	if sm, ok := m.inner.(netsim.StepModel); ok {
		se.inner = sm.BeginStep(nodes, t)
	}
	return se
}

// stepEval is the decorator's per-instant evaluator: static per-node span
// lists and ground flags survive across steps (the node set is fixed for a
// scenario's lifetime), only the down/weather bits refresh each instant.
type stepEval struct {
	m     *Model
	nodes []netsim.Node

	// Static while the node set is unchanged.
	spans  [][]Span // per-node downtime (nil for never-failing nodes)
	ground []bool

	// Per-step.
	t         time.Duration
	down      []bool
	nodesDown int
	weather   bool
	inner     netsim.StepEvaluator // nil when the inner model is per-pair only
}

// reset refreshes the per-step fault state for instant t: one schedule
// lookup per node plus the weather bit. Pooled evaluators carry the
// previous step's bits, so every checkout must pass through here.
//
//qntn:hotpath
func (se *stepEval) reset(t time.Duration) {
	se.t = t
	se.nodesDown = 0
	for i := range se.nodes {
		se.down[i] = spanAt(se.spans[i], t)
		if se.down[i] {
			se.nodesDown++
		}
	}
	se.weather = se.m.sched.Weather(t)
}

// FaultStats implements netsim.FaultStatser: the fault state resolved for
// this step.
//
//qntn:hotpath
func (se *stepEval) FaultStats() (nodesDown int, weather bool) {
	return se.nodesDown, se.weather
}

// PairStats implements netsim.PairStatser by forwarding the inner
// evaluator's prefilter counts, so decorating a scenario with faults keeps
// its telemetry visible.
//
//qntn:hotpath
func (se *stepEval) PairStats() (horizonRejects, rangeRejects, indexCulled int64) {
	if ps, ok := se.inner.(netsim.PairStatser); ok {
		return ps.PairStats()
	}
	return 0, 0, 0
}

// CandidatePairs implements netsim.PairEnumerator by forwarding the inner
// evaluator's spatial index. Sound because fault injection only ever
// removes links — a superset of the inner model's usable pairs is a
// superset of the decorated model's too.
//
//qntn:hotpath
func (se *stepEval) CandidatePairs() ([]netsim.PackedPair, bool) {
	if pe, ok := se.inner.(netsim.PairEnumerator); ok {
		return pe.CandidatePairs()
	}
	return nil, false
}

// sameNodes reports whether the static caches were built for exactly this
// node slice (node identity, not just IDs).
//
//qntn:hotpath
func (se *stepEval) sameNodes(nodes []netsim.Node) bool {
	if len(se.nodes) != len(nodes) {
		return false
	}
	for i, n := range nodes {
		if se.nodes[i] != n {
			return false
		}
	}
	return true
}

// init rebuilds the static per-node caches.
func (se *stepEval) init(nodes []netsim.Node) {
	n := len(nodes)
	se.nodes = append(se.nodes[:0], nodes...)
	se.spans = growSpans(se.spans, n)
	se.ground = growBools(se.ground, n)
	se.down = growBools(se.down, n)
	for i, node := range nodes {
		se.spans[i] = se.m.sched.down[node.ID()]
		se.ground[i] = node.Kind() == netsim.Ground
	}
}

func growSpans(s [][]Span, n int) [][]Span {
	if cap(s) >= n {
		return s[:n]
	}
	return make([][]Span, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// EvaluatePair implements netsim.StepEvaluator, mirroring Model.Evaluate
// exactly: down gate, inner physics, then the weather gate.
//
//qntn:hotpath every node pair of every step goes through here
func (se *stepEval) EvaluatePair(i, j int) (float64, bool) {
	if se.down[i] || se.down[j] {
		return 0, false
	}
	var eta float64
	var ok bool
	if se.inner != nil {
		eta, ok = se.inner.EvaluatePair(i, j)
	} else {
		eta, ok = se.m.inner.Evaluate(se.nodes[i], se.nodes[j], se.t)
	}
	if !ok {
		return 0, false
	}
	if se.weather && se.ground[i] != se.ground[j] {
		return se.m.ApplyWeather(eta)
	}
	return eta, true
}

// Close implements netsim.StepEvaluator, releasing the inner evaluator and
// returning this one to the model's pool.
//
//qntn:hotpath
func (se *stepEval) Close() {
	if se.inner != nil {
		se.inner.Close()
		se.inner = nil
	}
	se.m.pool.Put(se)
}
