package fault

import (
	"math/rand"
	"sort"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/runner"
)

// Span is one half-open [Start, End) downtime interval.
type Span struct {
	Start time.Duration
	End   time.Duration
}

// Contains reports whether t falls inside the span.
func (s Span) Contains(t time.Duration) bool { return s.Start <= t && t < s.End }

// Schedule holds precomputed, immutable downtime intervals: one sorted list
// per faulted node plus one region-wide weather list. Construction is a
// pure function of (Config, node IDs) — node order, worker count and query
// order never change it — and queries are lock-free binary searches, so one
// schedule safely serves every concurrent sweep worker.
type Schedule struct {
	cfg     Config
	horizon time.Duration
	down    map[string][]Span
	weather []Span
}

// NewSchedule samples the downtime of every node whose kind has an enabled
// MTBF/MTTR pair, plus the weather blackout sequence. Each platform draws
// from its own RNG stream, seeded by runner.TaskSeed over an FNV-64a hash
// of the node ID, so adding or removing nodes never perturbs the schedules
// of the others.
func NewSchedule(cfg Config, nodes []netsim.Node) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		cfg:     cfg,
		horizon: cfg.horizon(),
		down:    make(map[string][]Span),
	}
	for _, node := range nodes {
		var mtbf, mttr time.Duration
		switch node.Kind() {
		case netsim.Satellite:
			mtbf, mttr = cfg.SatMTBF, cfg.SatMTTR
		case netsim.HAP:
			mtbf, mttr = cfg.HAPMTBF, cfg.HAPMTTR
		case netsim.Ground:
			mtbf, mttr = cfg.GroundMTBF, cfg.GroundMTTR
		}
		if mtbf <= 0 || mttr <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(runner.TaskSeed(cfg.Seed, streamKey(node.ID()))))
		if spans := alternatingRenewal(rng, mtbf, mttr, s.horizon); len(spans) > 0 {
			s.down[node.ID()] = spans
		}
	}
	if cfg.WeatherP > 0 {
		// Mean blackout D and long-run fraction p fix the mean clear gap
		// U = D·(1−p)/p.
		d := cfg.weatherMean()
		up := time.Duration(float64(d) * (1 - cfg.WeatherP) / cfg.WeatherP)
		rng := rand.New(rand.NewSource(runner.TaskSeed(cfg.Seed, streamKey("\x00weather"))))
		s.weather = alternatingRenewal(rng, up, d, s.horizon)
	}
	return s, nil
}

// streamKey hashes an identifier into the task index of the per-platform
// seed stream. runner.FNV64a is bit-for-bit hash/fnv's 64-bit FNV-1a, so
// schedules sampled before the switch replay identically.
func streamKey(id string) uint64 {
	return runner.FNV64a(id)
}

// alternatingRenewal samples [down] intervals of an alternating renewal
// process starting in the up state: exponential up times with the given
// mean, exponential down times with mean meanDown, truncated at horizon.
func alternatingRenewal(rng *rand.Rand, meanUp, meanDown, horizon time.Duration) []Span {
	var spans []Span
	at := sampleExp(rng, meanUp)
	for at < horizon {
		down := sampleExp(rng, meanDown)
		end := at + down
		if end > horizon {
			end = horizon
		}
		spans = append(spans, Span{Start: at, End: end})
		at += down + sampleExp(rng, meanUp)
	}
	return spans
}

// sampleExp draws an exponential duration with the given mean, clamped to
// at least 1 ns so the renewal process always advances.
func sampleExp(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		return 1
	}
	return d
}

// spanAt reports whether t falls inside any of the sorted spans.
func spanAt(spans []Span, t time.Duration) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End > t })
	return i < len(spans) && spans[i].Start <= t
}

// Down reports whether the named node is failed at instant t. Unknown IDs
// and instants past the horizon are operational.
func (s *Schedule) Down(id string, t time.Duration) bool {
	return spanAt(s.down[id], t)
}

// Weather reports whether a weather blackout covers instant t.
func (s *Schedule) Weather(t time.Duration) bool {
	return spanAt(s.weather, t)
}

// DownSpans returns the downtime intervals of the named node (nil when the
// node never fails). The slice is shared — callers must not mutate it.
func (s *Schedule) DownSpans(id string) []Span { return s.down[id] }

// WeatherSpans returns the weather blackout intervals.
func (s *Schedule) WeatherSpans() []Span { return s.weather }

// Horizon returns the schedule length.
func (s *Schedule) Horizon() time.Duration { return s.horizon }

// Config returns the configuration the schedule was built from.
func (s *Schedule) Config() Config { return s.cfg }

// TotalDown sums the lengths of the given spans — the observed downtime a
// test compares against the configured MTBF/MTTR ratio.
func TotalDown(spans []Span) time.Duration {
	var total time.Duration
	for _, sp := range spans {
		total += sp.End - sp.Start
	}
	return total
}
