// Package orbit implements the orbital-mechanics substrate that replaces the
// Ansys STK workflow described in the paper: Keplerian two-body propagation
// of circular low-Earth orbits, Earth rotation via a simplified Greenwich
// sidereal angle, the Walker-Delta constellation builder, the paper's exact
// Table II satellite catalog, and generation of 30-second "movement sheets"
// (sequences of ECEF positions) that drive the network simulator.
package orbit

import (
	"errors"
	"fmt"
	"math"
	"time"

	"qntn/internal/geo"
)

// MuEarth is the standard gravitational parameter of Earth in m^3/s^2.
const MuEarth = 3.986004418e14

// EarthRotationRate is Earth's sidereal rotation rate in rad/s.
const EarthRotationRate = 7.2921150e-5

// J2 is Earth's second zonal harmonic coefficient, driving the secular
// nodal regression and apsidal rotation of LEO orbits.
const J2 = 1.08262668e-3

// Elements is a set of classical Keplerian orbital elements at epoch t=0.
// Angles are in radians. For the circular orbits used throughout the paper
// the eccentricity is zero and the argument of perigee is conventionally
// zero, with TrueAnomaly measured from the ascending node.
type Elements struct {
	SemiMajorAxisM float64
	Eccentricity   float64
	InclinationRad float64
	RAANRad        float64 // right ascension of the ascending node
	ArgPerigeeRad  float64
	TrueAnomalyRad float64 // at epoch
	// ApplyJ2 enables the secular J2 corrections (nodal regression,
	// apsidal rotation, mean-anomaly drift) that STK's default propagator
	// applies. The paper's geometry is insensitive to J2 over a single
	// day (the whole constellation pattern precesses together), which the
	// test suite verifies — hence two-body remains the default.
	ApplyJ2 bool
}

// NodalRegressionRate returns the secular RAAN drift dΩ/dt in rad/s due to
// J2 (negative for prograde orbits).
func (e Elements) NodalRegressionRate() float64 {
	n := e.MeanMotion()
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	ratio := geo.EarthRadiusM / p
	return -1.5 * n * J2 * ratio * ratio * math.Cos(e.InclinationRad)
}

// ApsidalRotationRate returns the secular argument-of-perigee drift dω/dt
// in rad/s due to J2.
func (e Elements) ApsidalRotationRate() float64 {
	n := e.MeanMotion()
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	ratio := geo.EarthRadiusM / p
	s := math.Sin(e.InclinationRad)
	return 0.75 * n * J2 * ratio * ratio * (4 - 5*s*s)
}

// meanMotionJ2Correction returns the secular mean-anomaly rate correction
// due to J2 in rad/s.
func (e Elements) meanMotionJ2Correction() float64 {
	n := e.MeanMotion()
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	ratio := geo.EarthRadiusM / p
	s := math.Sin(e.InclinationRad)
	return 0.75 * n * J2 * ratio * ratio * math.Sqrt(1-e.Eccentricity*e.Eccentricity) * (2 - 3*s*s)
}

// atEpoch returns the osculating elements advanced by the secular J2 rates
// to time t (identity when ApplyJ2 is false).
func (e Elements) atEpoch(t time.Duration) Elements {
	if !e.ApplyJ2 {
		return e
	}
	dt := t.Seconds()
	out := e
	out.RAANRad = math.Mod(e.RAANRad+e.NodalRegressionRate()*dt, 2*math.Pi)
	out.ArgPerigeeRad = math.Mod(e.ArgPerigeeRad+e.ApsidalRotationRate()*dt, 2*math.Pi)
	return out
}

// Validate reports whether the elements describe a propagatable orbit.
func (e Elements) Validate() error {
	if e.SemiMajorAxisM <= geo.EarthRadiusM {
		return fmt.Errorf("orbit: semi-major axis %.0f m is inside the Earth", e.SemiMajorAxisM)
	}
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("%w: eccentricity %.3f", ErrHyperbolic, e.Eccentricity)
	}
	return nil
}

// Period returns the orbital period.
func (e Elements) Period() time.Duration {
	n := e.MeanMotion()
	if n == 0 {
		return 0
	}
	return time.Duration(2 * math.Pi / n * float64(time.Second))
}

// MeanMotion returns the mean motion in rad/s.
func (e Elements) MeanMotion() float64 {
	a := e.SemiMajorAxisM
	if a <= 0 {
		return 0
	}
	return math.Sqrt(MuEarth / (a * a * a))
}

// ErrHyperbolic is returned when propagation is requested for an orbit with
// eccentricity outside [0,1).
var ErrHyperbolic = errors.New("orbit: eccentricity outside [0,1)")

// MaxSpeedMPerS returns an upper bound on the satellite's ECEF ground-frame
// speed in m/s, valid for every instant of the propagation: the vis-viva
// speed at perigee (the orbital maximum) plus the Earth-rotation sweep at
// apogee radius, plus — when J2 is enabled — the secular precession rates
// swept at apogee radius. The 0.1% margin absorbs the curvature of composing
// the rotations. A zero return means no finite bound is available (the
// elements are not propagatable); callers must fall back to dense scanning.
func (e Elements) MaxSpeedMPerS() float64 {
	a, ecc := e.SemiMajorAxisM, e.Eccentricity
	if a <= 0 || ecc < 0 || ecc >= 1 {
		return 0
	}
	rPerigee := a * (1 - ecc)
	rApogee := a * (1 + ecc)
	vOrbit := math.Sqrt(MuEarth * (2/rPerigee - 1/a))
	v := vOrbit + EarthRotationRate*rApogee
	if e.ApplyJ2 {
		drift := math.Abs(e.NodalRegressionRate()) +
			math.Abs(e.ApsidalRotationRate()) +
			math.Abs(e.meanMotionJ2Correction())
		v += drift * rApogee
	}
	return v * 1.001
}

// PositionECI returns the inertial position of the satellite at time t after
// epoch. For eccentric orbits Kepler's equation is solved by Newton
// iteration; the circular case is exact.
func (e Elements) PositionECI(t time.Duration) geo.Vec3 {
	osc := e.atEpoch(t)
	nu := e.trueAnomalyAt(t)
	r := e.radiusAt(nu)

	// Perifocal coordinates measured from the ascending node: the in-plane
	// angle is argument of perigee + true anomaly.
	u := osc.ArgPerigeeRad + nu
	cosU, sinU := math.Cos(u), math.Sin(u)
	cosO, sinO := math.Cos(osc.RAANRad), math.Sin(osc.RAANRad)
	cosI, sinI := math.Cos(e.InclinationRad), math.Sin(e.InclinationRad)

	return geo.Vec3{
		X: r * (cosO*cosU - sinO*sinU*cosI),
		Y: r * (sinO*cosU + cosO*sinU*cosI),
		Z: r * (sinU * sinI),
	}
}

// PositionECEF returns the Earth-fixed position of the satellite at time t
// after epoch, rotating the inertial frame by the Greenwich sidereal angle.
func (e Elements) PositionECEF(t time.Duration) geo.Vec3 {
	eci := e.PositionECI(t)
	theta := GMST(t)
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	// ECEF = Rz(theta) * ECI with theta the Earth rotation angle.
	return geo.Vec3{
		X: cosT*eci.X + sinT*eci.Y,
		Y: -sinT*eci.X + cosT*eci.Y,
		Z: eci.Z,
	}
}

// SubsatellitePoint returns the geodetic point directly beneath the
// satellite at time t.
func (e Elements) SubsatellitePoint(t time.Duration) geo.LLA {
	p := geo.ToLLA(e.PositionECEF(t))
	return p
}

// trueAnomalyAt returns the true anomaly at time t after epoch.
func (e Elements) trueAnomalyAt(t time.Duration) float64 {
	n := e.MeanMotion()
	if e.ApplyJ2 {
		n += e.meanMotionJ2Correction()
	}
	dt := t.Seconds()
	if e.Eccentricity == 0 {
		return math.Mod(e.TrueAnomalyRad+n*dt, 2*math.Pi)
	}
	// Convert epoch true anomaly to mean anomaly, advance, convert back.
	m0 := trueToMean(e.TrueAnomalyRad, e.Eccentricity)
	m := math.Mod(m0+n*dt, 2*math.Pi)
	ea := solveKepler(m, e.Eccentricity)
	return eccentricToTrue(ea, e.Eccentricity)
}

func (e Elements) radiusAt(nu float64) float64 {
	a, ecc := e.SemiMajorAxisM, e.Eccentricity
	if ecc == 0 {
		return a
	}
	return a * (1 - ecc*ecc) / (1 + ecc*math.Cos(nu))
}

func trueToMean(nu, ecc float64) float64 {
	ea := 2 * math.Atan2(math.Sqrt(1-ecc)*math.Sin(nu/2), math.Sqrt(1+ecc)*math.Cos(nu/2))
	return ea - ecc*math.Sin(ea)
}

func eccentricToTrue(ea, ecc float64) float64 {
	return 2 * math.Atan2(math.Sqrt(1+ecc)*math.Sin(ea/2), math.Sqrt(1-ecc)*math.Cos(ea/2))
}

// solveKepler solves M = E - e sin E for E by Newton iteration.
func solveKepler(m, ecc float64) float64 {
	ea := m
	if ecc > 0.8 {
		ea = math.Pi
	}
	for i := 0; i < 50; i++ {
		f := ea - ecc*math.Sin(ea) - m
		fp := 1 - ecc*math.Cos(ea)
		d := f / fp
		ea -= d
		if math.Abs(d) < 1e-14 {
			break
		}
	}
	return ea
}

// GMST returns the simplified Greenwich mean sidereal angle at time t after
// the simulation epoch. The epoch is arbitrary (the paper simulates "a day"
// with no absolute date), so the angle is simply Earth's rotation rate times
// elapsed time.
func GMST(t time.Duration) float64 {
	return math.Mod(EarthRotationRate*t.Seconds(), 2*math.Pi)
}

// CircularLEO returns circular-orbit elements at the given altitude,
// inclination, RAAN, and true anomaly (all angles in degrees), matching the
// paper's constellation convention (500 km altitude, 53 degrees
// inclination).
func CircularLEO(altitudeM, inclinationDeg, raanDeg, trueAnomalyDeg float64) Elements {
	return Elements{
		SemiMajorAxisM: geo.EarthRadiusM + altitudeM,
		Eccentricity:   0,
		InclinationRad: geo.Rad(inclinationDeg),
		RAANRad:        geo.Rad(raanDeg),
		ArgPerigeeRad:  0,
		TrueAnomalyRad: geo.Rad(trueAnomalyDeg),
	}
}
