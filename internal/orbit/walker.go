package orbit

import (
	"fmt"
	"math"
	"strings"

	"qntn/internal/geo"
)

// PaperAltitudeM is the satellite altitude used throughout the paper (500 km).
const PaperAltitudeM = 500e3

// PaperInclinationDeg is the orbital inclination used throughout the paper.
const PaperInclinationDeg = 53

// MaxPaperSatellites is the largest constellation size evaluated in the
// paper (Table II lists 108 orbital slots).
const MaxPaperSatellites = 108

// WalkerDelta builds a Walker-Delta constellation i:t/p/f — t satellites in
// p equally spaced planes at inclination inclinationDeg, with phasing factor
// f (relative spacing between satellites in adjacent planes, in units of
// 360/t degrees). Satellites are returned plane-major.
func WalkerDelta(totalSats, planes, phasing int, inclinationDeg, altitudeM float64) ([]Elements, error) {
	if planes <= 0 || totalSats <= 0 || totalSats%planes != 0 {
		return nil, fmt.Errorf("orbit: invalid Walker t/p = %d/%d", totalSats, planes)
	}
	perPlane := totalSats / planes
	sats := make([]Elements, 0, totalSats)
	for p := 0; p < planes; p++ {
		raan := 360 * float64(p) / float64(planes)
		for s := 0; s < perPlane; s++ {
			ta := 360*float64(s)/float64(perPlane) + 360*float64(phasing*p)/float64(totalSats)
			sats = append(sats, CircularLEO(altitudeM, inclinationDeg, raan, ta))
		}
	}
	return sats, nil
}

// WalkerShell describes one Walker-Delta shell of a (possibly multi-shell)
// constellation: t/p/f at a given altitude and inclination.
type WalkerShell struct {
	TotalSats      int
	Planes         int
	Phasing        int
	InclinationDeg float64
	AltitudeM      float64
}

// Count returns the shell's satellite count.
func (s WalkerShell) Count() int { return s.TotalSats }

// WalkerShells concatenates the elements of several Walker shells in shell
// order (each shell plane-major, as WalkerDelta returns them). Every shell
// must be a valid Walker pattern at a positive altitude.
func WalkerShells(shells []WalkerShell) ([]Elements, error) {
	if len(shells) == 0 {
		return nil, fmt.Errorf("orbit: no Walker shells")
	}
	var out []Elements
	for i, sh := range shells {
		if !(sh.AltitudeM > 0) {
			return nil, fmt.Errorf("orbit: shell %d: non-positive altitude %v m", i, sh.AltitudeM)
		}
		elems, err := WalkerDelta(sh.TotalSats, sh.Planes, sh.Phasing, sh.InclinationDeg, sh.AltitudeM)
		if err != nil {
			return nil, fmt.Errorf("orbit: shell %d: %w", i, err)
		}
		out = append(out, elems...)
	}
	return out, nil
}

// ParseWalkerShells parses a comma-separated multi-shell spec of the form
// "t/p/f@altkm:incdeg", e.g. "1008/24/1@550:53,360/20/1@600:70". The phasing
// factor f is in units of 360/t degrees, altitude in kilometers and
// inclination in degrees.
func ParseWalkerShells(spec string) ([]WalkerShell, error) {
	if spec == "" {
		return nil, fmt.Errorf("orbit: empty Walker shell spec")
	}
	var shells []WalkerShell
	for _, part := range strings.Split(spec, ",") {
		var sh WalkerShell
		var altKm float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d/%d/%d@%f:%f",
			&sh.TotalSats, &sh.Planes, &sh.Phasing, &altKm, &sh.InclinationDeg); err != nil {
			return nil, fmt.Errorf("orbit: bad Walker shell %q (want t/p/f@altkm:incdeg): %w", part, err)
		}
		sh.AltitudeM = altKm * 1e3
		shells = append(shells, sh)
	}
	return shells, nil
}

// tableIIGapPlanes lists the RAANs (degrees) of the 12 gap-filling planes
// added after the first 36 satellites, in the exact order they appear in
// Table II of the paper (columns 2 and 3).
var tableIIGapPlanes = []float64{20, 40, 80, 100, 140, 160, 200, 220, 260, 280, 320, 340}

// TableIIWith returns the Table II slot pattern (18 planes spaced 20° in
// RAAN, 6 anomaly slots each, listed in the paper's incremental order) at
// an arbitrary altitude and inclination — the knob the altitude/inclination
// ablation turns. TableII is the paper's instance at 500 km / 53°.
func TableIIWith(altitudeM, inclinationDeg float64) []Elements {
	sats := make([]Elements, 0, MaxPaperSatellites)
	for ta := 0; ta < 360; ta += 60 {
		for raan := 0; raan < 360; raan += 60 {
			sats = append(sats, CircularLEO(altitudeM, inclinationDeg, float64(raan), float64(ta)))
		}
	}
	for _, raan := range tableIIGapPlanes {
		for ta := 0; ta < 360; ta += 60 {
			sats = append(sats, CircularLEO(altitudeM, inclinationDeg, raan, float64(ta)))
		}
	}
	return sats
}

// TableII returns the paper's full 108-satellite orbital catalog in its
// exact incremental ordering, so that TableII()[:n] is the configuration the
// paper evaluates with n satellites (n = 6, 12, ..., 108):
//
//   - Satellites 1-36 form a Walker Delta of 6 planes (RAAN 0, 60, ...,
//     300). They are listed anomaly-major: the first six satellites occupy
//     true anomaly 0 across all six planes, the next six occupy true anomaly
//     60, and so on — matching the left column of Table II.
//   - Satellites 37-108 fill the RAAN gaps: 12 additional planes spaced so
//     all planes end up 20 degrees apart, each carrying 6 satellites at true
//     anomalies 0, 60, ..., 300 — matching columns two and three of Table II.
//
// All orbits are circular at 500 km altitude and 53 degrees inclination.
func TableII() []Elements {
	return TableIIWith(PaperAltitudeM, PaperInclinationDeg)
}

// PaperConstellation returns the first n entries of the Table II catalog.
// n must be a positive multiple of 6 no larger than 108, matching the
// paper's sweep (6, 12, ..., 108 satellites).
func PaperConstellation(n int) ([]Elements, error) {
	return PaperConstellationWith(n, PaperAltitudeM, PaperInclinationDeg)
}

// PaperConstellationWith returns the first n Table II slots at a custom
// altitude and inclination.
func PaperConstellationWith(n int, altitudeM, inclinationDeg float64) ([]Elements, error) {
	if n <= 0 || n > MaxPaperSatellites || n%6 != 0 {
		return nil, fmt.Errorf("orbit: paper constellation size must be a multiple of 6 in [6,108], got %d", n)
	}
	return TableIIWith(altitudeM, inclinationDeg)[:n], nil
}

// FootprintHalfAngle returns the Earth-central half angle of the coverage
// footprint of a satellite at the given altitude with the given minimum
// elevation mask, in radians. A ground point sees the satellite above the
// mask iff the central angle between the point and the subsatellite point is
// at most this value.
func FootprintHalfAngle(altitudeM, minElevationRad float64) float64 {
	re := geo.EarthRadiusM
	// sin-rule geometry: cos(e)*Re/(Re+h) = sin(angle at satellite);
	// half angle = acos(Re cos e/(Re+h)) - e.
	x := re * math.Cos(minElevationRad) / (re + altitudeM)
	if x > 1 {
		x = 1
	}
	return math.Acos(x) - minElevationRad
}
