package orbit

import (
	"math"
	"testing"
	"time"

	"qntn/internal/geo"
)

var ttu = geo.LLA{LatDeg: 36.1757, LonDeg: -85.5066}

func TestPassesOverTennessee(t *testing.T) {
	e := paperOrbit()
	passes, err := Passes(e, ttu, geo.Rad(20), Day, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatal("no passes in a day — implausible for a 53° LEO over 36°N")
	}
	for i, p := range passes {
		if p.End <= p.Start {
			t.Fatalf("pass %d degenerate: %+v", i, p)
		}
		// A 500 km LEO pass above a 20° mask lasts a few minutes at most.
		if p.Duration() > 10*time.Minute {
			t.Fatalf("pass %d lasts %v — too long for LEO", i, p.Duration())
		}
		if p.MaxElevationRad < geo.Rad(20) || p.MaxElevationRad > math.Pi/2+1e-9 {
			t.Fatalf("pass %d max elevation %g°", i, geo.Deg(p.MaxElevationRad))
		}
		if p.MaxElevationAt < p.Start || p.MaxElevationAt >= p.End {
			t.Fatalf("pass %d peak outside window", i)
		}
		// Closest approach cannot be below the altitude or above the
		// 20°-mask slant bound.
		if p.MinRangeM < PaperAltitudeM-1e3 || p.MinRangeM > 1.3e6 {
			t.Fatalf("pass %d min range %g km", i, p.MinRangeM/1000)
		}
		if i > 0 && p.Start < passes[i-1].End {
			t.Fatalf("passes overlap: %+v then %+v", passes[i-1], p)
		}
	}
}

func TestPassesHigherMaskFewerOrShorter(t *testing.T) {
	e := paperOrbit()
	low, err := Passes(e, ttu, geo.Rad(10), Day, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Passes(e, ttu, geo.Rad(40), Day, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	total := func(ps []Pass) time.Duration {
		var d time.Duration
		for _, p := range ps {
			d += p.Duration()
		}
		return d
	}
	if total(high) >= total(low) {
		t.Fatalf("40° mask visibility %v not below 10° mask %v", total(high), total(low))
	}
}

func TestPassesRejectsBadInput(t *testing.T) {
	e := paperOrbit()
	if _, err := Passes(e, ttu, 0.1, Day, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Passes(e, ttu, 0.1, 0, time.Second); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := Passes(Elements{SemiMajorAxisM: 1}, ttu, 0.1, Day, time.Minute); err == nil {
		t.Fatal("invalid orbit accepted")
	}
}

func TestNextPass(t *testing.T) {
	e := paperOrbit()
	all, err := Passes(e, ttu, geo.Rad(20), Day, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skip("need at least two passes for this test")
	}
	// Asking after the first pass must return the second.
	p, ok, err := NextPass(e, ttu, geo.Rad(20), all[0].End, Day, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || p.Start != all[1].Start {
		t.Fatalf("next pass %+v, want %+v", p, all[1])
	}
	// Asking beyond the window returns none.
	if _, ok, err := NextPass(e, ttu, geo.Rad(20), Day, Day, 30*time.Second); err != nil || ok {
		t.Fatalf("expected no pass after the window, got ok=%v err=%v", ok, err)
	}
}
