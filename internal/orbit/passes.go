package orbit

import (
	"fmt"
	"time"

	"qntn/internal/geo"
)

// Pass is one visibility window of a satellite over an observer.
type Pass struct {
	// Start and End bound the window during which elevation stays at or
	// above the mask (half-open, aligned to the sampling step).
	Start time.Duration
	End   time.Duration
	// MaxElevationRad is the peak elevation during the pass.
	MaxElevationRad float64
	// MaxElevationAt is when the peak occurs.
	MaxElevationAt time.Duration
	// MinRangeM is the closest slant range during the pass.
	MinRangeM float64
}

// Duration returns the pass length.
func (p Pass) Duration() time.Duration { return p.End - p.Start }

// Passes predicts the visibility windows of a satellite over a ground
// observer within [0, window), sampling every step and applying the given
// minimum elevation mask. It is the pass-prediction feature STK provides in
// the paper's workflow.
func Passes(e Elements, observer geo.LLA, minElevationRad float64, window, step time.Duration) ([]Pass, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if step <= 0 {
		return nil, fmt.Errorf("orbit: non-positive step %v", step)
	}
	if window <= 0 {
		return nil, fmt.Errorf("orbit: non-positive window %v", window)
	}
	var passes []Pass
	var cur *Pass
	for t := time.Duration(0); t < window; t += step {
		look := geo.Look(observer, e.PositionECEF(t))
		visible := look.ElevationRad >= minElevationRad
		switch {
		case visible && cur == nil:
			passes = append(passes, Pass{
				Start:           t,
				End:             t + step,
				MaxElevationRad: look.ElevationRad,
				MaxElevationAt:  t,
				MinRangeM:       look.SlantRangeM,
			})
			cur = &passes[len(passes)-1]
		case visible:
			cur.End = t + step
			if look.ElevationRad > cur.MaxElevationRad {
				cur.MaxElevationRad = look.ElevationRad
				cur.MaxElevationAt = t
			}
			if look.SlantRangeM < cur.MinRangeM {
				cur.MinRangeM = look.SlantRangeM
			}
		default:
			cur = nil
		}
	}
	return passes, nil
}

// NextPass returns the first pass starting at or after `after`, or false if
// none occurs within the window.
func NextPass(e Elements, observer geo.LLA, minElevationRad float64, after, window, step time.Duration) (Pass, bool, error) {
	passes, err := Passes(e, observer, minElevationRad, window, step)
	if err != nil {
		return Pass{}, false, err
	}
	for _, p := range passes {
		if p.Start >= after {
			return p, true, nil
		}
	}
	return Pass{}, false, nil
}
