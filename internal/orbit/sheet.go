package orbit

import (
	"fmt"
	"time"

	"qntn/internal/geo"
)

// DefaultSampleInterval is the 30-second sampling interval the paper uses
// when recording satellite positions with STK.
const DefaultSampleInterval = 30 * time.Second

// Day is the simulated duration of the paper's experiments.
const Day = 24 * time.Hour

// Sample is one row of a movement sheet: a timestamp and the satellite's
// Earth-fixed position at that time.
type Sample struct {
	T    time.Duration
	ECEF geo.Vec3
}

// MovementSheet is the sequence of sampled positions for one satellite over
// the simulated period — the in-memory equivalent of the "movement sheets"
// the paper exports from STK and imports into its upgraded QuNetSim.
type MovementSheet struct {
	Name     string
	Interval time.Duration
	Samples  []Sample
}

// GenerateSheet propagates the orbit and samples its ECEF position every
// interval from t=0 through duration (inclusive of the final sample).
func GenerateSheet(name string, e Elements, duration, interval time.Duration) (*MovementSheet, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("orbit: non-positive sample interval %v", interval)
	}
	if duration < 0 {
		return nil, fmt.Errorf("orbit: negative duration %v", duration)
	}
	n := int(duration/interval) + 1
	sheet := &MovementSheet{Name: name, Interval: interval, Samples: make([]Sample, 0, n)}
	for i := 0; i < n; i++ {
		t := time.Duration(i) * interval
		sheet.Samples = append(sheet.Samples, Sample{T: t, ECEF: e.PositionECEF(t)})
	}
	return sheet, nil
}

// At returns the position at time t, holding the most recent sample
// (zero-order hold, matching the paper's stepwise satellite movement where a
// thread moves the satellite to the next recorded position). Times beyond
// the sheet clamp to the final sample; negative times clamp to the first.
func (s *MovementSheet) At(t time.Duration) geo.Vec3 {
	if len(s.Samples) == 0 {
		return geo.Vec3{}
	}
	if t <= 0 {
		return s.Samples[0].ECEF
	}
	i := int(t / s.Interval)
	if i >= len(s.Samples) {
		i = len(s.Samples) - 1
	}
	return s.Samples[i].ECEF
}

// Duration returns the time span covered by the sheet.
func (s *MovementSheet) Duration() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].T
}

// GenerateSheets builds one movement sheet per constellation member. Names
// are "SAT-001", "SAT-002", ... in catalog order.
func GenerateSheets(elems []Elements, duration, interval time.Duration) ([]*MovementSheet, error) {
	sheets := make([]*MovementSheet, 0, len(elems))
	for i, e := range elems {
		sh, err := GenerateSheet(fmt.Sprintf("SAT-%03d", i+1), e, duration, interval)
		if err != nil {
			return nil, fmt.Errorf("satellite %d: %w", i+1, err)
		}
		sheets = append(sheets, sh)
	}
	return sheets, nil
}
