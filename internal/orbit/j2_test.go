package orbit

import (
	"math"
	"testing"
	"time"

	"qntn/internal/geo"
)

func TestNodalRegressionRate(t *testing.T) {
	// Textbook value for a 500 km / 53° circular orbit: ≈ −4.6°/day.
	e := paperOrbit()
	perDay := geo.Deg(e.NodalRegressionRate() * 86400)
	if perDay > -4.0 || perDay < -5.2 {
		t.Fatalf("nodal regression %g°/day, want ≈ -4.6", perDay)
	}
	// Polar orbits do not regress; retrograde orbits precess forward.
	polar := CircularLEO(500e3, 90, 0, 0)
	if math.Abs(polar.NodalRegressionRate()) > 1e-12 {
		t.Fatal("polar orbit should have zero nodal regression")
	}
	retro := CircularLEO(500e3, 120, 0, 0)
	if retro.NodalRegressionRate() <= 0 {
		t.Fatal("retrograde orbit should precess forward")
	}
}

func TestApsidalRotationSignChange(t *testing.T) {
	// dω/dt changes sign at the critical inclination 63.43°.
	below := CircularLEO(500e3, 50, 0, 0)
	above := CircularLEO(500e3, 75, 0, 0)
	if below.ApsidalRotationRate() <= 0 {
		t.Fatal("apsidal rotation should be positive below critical inclination")
	}
	if above.ApsidalRotationRate() >= 0 {
		t.Fatal("apsidal rotation should be negative above critical inclination")
	}
	critical := CircularLEO(500e3, 63.4349, 0, 0)
	if math.Abs(critical.ApsidalRotationRate()) > 1e-9 {
		t.Fatalf("apsidal rotation at critical inclination %g", critical.ApsidalRotationRate())
	}
}

func TestJ2ShiftsRAANOverADay(t *testing.T) {
	e := paperOrbit()
	j2 := e
	j2.ApplyJ2 = true
	// The node regresses ≈4.6° west per day...
	osc := j2.atEpoch(Day)
	if shift := geo.Deg(osc.RAANRad - e.RAANRad); math.Abs(shift+4.61) > 0.2 {
		t.Fatalf("RAAN shift %g°/day, want ≈ -4.61", shift)
	}
	// ...but for a circular orbit the apsidal and mean-anomaly drifts
	// partially cancel the node displacement, leaving a net position
	// offset of tens of km after a day (not the naive ~330 km of a pure
	// node rotation).
	d := e.PositionECI(Day).Distance(j2.PositionECI(Day))
	if d < 20e3 || d > 300e3 {
		t.Fatalf("J2 displacement after a day %g km, want tens-of-km scale", d/1000)
	}
	// At epoch both agree exactly.
	if e.PositionECI(0).Distance(j2.PositionECI(0)) > 1e-6 {
		t.Fatal("J2 should not change the epoch state")
	}
	// Radius is unchanged (secular J2 does not alter the semi-major
	// axis).
	if r := j2.PositionECI(Day).Norm(); math.Abs(r-e.SemiMajorAxisM) > 1e-3 {
		t.Fatalf("J2 changed orbital radius: %g", r)
	}
}

func TestJ2CoverageInsensitivityOneDay(t *testing.T) {
	// The rationale for defaulting to two-body: over the paper's one-day
	// horizon the whole constellation precesses together, so the fraction
	// of time a satellite is visible from Tennessee is nearly unchanged.
	// Compare single-satellite visibility minutes with and without J2.
	count := func(applyJ2 bool) int {
		e := paperOrbit()
		e.ApplyJ2 = applyJ2
		visible := 0
		for at := time.Duration(0); at < Day; at += time.Minute {
			if geo.Look(ttu, e.PositionECEF(at)).ElevationRad >= geo.Rad(20) {
				visible++
			}
		}
		return visible
	}
	plain, withJ2 := count(false), count(true)
	if plain == 0 {
		t.Fatal("no visibility at all")
	}
	diff := math.Abs(float64(plain-withJ2)) / float64(plain)
	if diff > 0.25 {
		t.Fatalf("J2 changed daily visibility by %.0f%% (%d vs %d minutes)", 100*diff, plain, withJ2)
	}
}
