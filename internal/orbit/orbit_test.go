package orbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"qntn/internal/geo"
)

func paperOrbit() Elements {
	return CircularLEO(PaperAltitudeM, PaperInclinationDeg, 0, 0)
}

func TestCircularLEOSemiMajorAxis(t *testing.T) {
	e := paperOrbit()
	if math.Abs(e.SemiMajorAxisM-6871e3) > 1 {
		t.Fatalf("semi-major axis %g, paper uses 6871 km", e.SemiMajorAxisM)
	}
}

func TestPeriodLEO(t *testing.T) {
	// A 500 km circular orbit has a period of roughly 94.5 minutes.
	p := paperOrbit().Period()
	if p < 93*time.Minute || p > 96*time.Minute {
		t.Fatalf("period %v outside expected LEO range", p)
	}
}

func TestRadiusConstantForCircular(t *testing.T) {
	e := paperOrbit()
	for _, dt := range []time.Duration{0, time.Minute, time.Hour, 5 * time.Hour} {
		r := e.PositionECI(dt).Norm()
		if math.Abs(r-e.SemiMajorAxisM) > 1e-3 {
			t.Fatalf("radius %g at %v, want %g", r, dt, e.SemiMajorAxisM)
		}
		recef := e.PositionECEF(dt).Norm()
		if math.Abs(recef-e.SemiMajorAxisM) > 1e-3 {
			t.Fatalf("ECEF radius %g at %v", recef, dt)
		}
	}
}

func TestInclinationBoundsLatitude(t *testing.T) {
	// Subsatellite latitude never exceeds the inclination.
	e := paperOrbit()
	maxLat := 0.0
	for dt := time.Duration(0); dt < 3*time.Hour; dt += 30 * time.Second {
		lat := math.Abs(e.SubsatellitePoint(dt).LatDeg)
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat > PaperInclinationDeg+0.01 {
		t.Fatalf("max latitude %g exceeds inclination", maxLat)
	}
	if maxLat < PaperInclinationDeg-1 {
		t.Fatalf("max latitude %g never approaches inclination over 3 h", maxLat)
	}
}

func TestOrbitReturnsAfterPeriod(t *testing.T) {
	e := paperOrbit()
	p := e.Period()
	start := e.PositionECI(0)
	end := e.PositionECI(p)
	if start.Distance(end) > 100 { // meters, after one full revolution
		t.Fatalf("ECI position drifted %g m after one period", start.Distance(end))
	}
}

func TestEquatorCrossingAtAscendingNode(t *testing.T) {
	// At epoch with true anomaly 0 and arg-perigee 0, the satellite is at
	// the ascending node: on the equator, longitude = RAAN (t=0 so no
	// Earth rotation offset).
	e := CircularLEO(PaperAltitudeM, 53, 60, 0)
	p := geo.ToLLA(e.PositionECEF(0))
	if math.Abs(p.LatDeg) > 1e-6 {
		t.Fatalf("latitude at ascending node %g", p.LatDeg)
	}
	if math.Abs(p.LonDeg-60) > 1e-6 {
		t.Fatalf("longitude at ascending node %g, want 60", p.LonDeg)
	}
}

func TestEccentricOrbitKeplerSolution(t *testing.T) {
	// Eccentric orbit: radius oscillates between perigee and apogee and
	// the Kepler solver conserves the vis-viva radius limits.
	e := Elements{
		SemiMajorAxisM: 7000e3,
		Eccentricity:   0.1,
		InclinationRad: geo.Rad(30),
	}
	rMin, rMax := math.Inf(1), 0.0
	for dt := time.Duration(0); dt < e.Period(); dt += 10 * time.Second {
		r := e.PositionECI(dt).Norm()
		rMin = math.Min(rMin, r)
		rMax = math.Max(rMax, r)
	}
	perigee := e.SemiMajorAxisM * (1 - e.Eccentricity)
	apogee := e.SemiMajorAxisM * (1 + e.Eccentricity)
	if math.Abs(rMin-perigee) > 2e3 || math.Abs(rMax-apogee) > 2e3 {
		t.Fatalf("radius range [%g, %g], want [%g, %g]", rMin, rMax, perigee, apogee)
	}
}

func TestSolveKeplerIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Float64() * 2 * math.Pi
		ecc := rng.Float64() * 0.95
		ea := solveKepler(m, ecc)
		return math.Abs(ea-ecc*math.Sin(ea)-m) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := Elements{SemiMajorAxisM: 1000}
	if err := bad.Validate(); err == nil {
		t.Error("sub-surface orbit accepted")
	}
	hyper := Elements{SemiMajorAxisM: 7000e3, Eccentricity: 1.2}
	if err := hyper.Validate(); err == nil {
		t.Error("hyperbolic orbit accepted")
	}
	if err := paperOrbit().Validate(); err != nil {
		t.Errorf("paper orbit rejected: %v", err)
	}
}

func TestGMSTFullDay(t *testing.T) {
	// Earth rotates ~360.9856 degrees per 24 h (sidereal rate over a solar
	// day slightly exceeds one turn).
	theta := GMST(24 * time.Hour)
	deg := geo.Deg(theta)
	if deg < 0.5 || deg > 1.5 {
		t.Fatalf("GMST after 24h = %g° (mod 360), want ≈0.99°", deg)
	}
}

func TestTableIICatalog(t *testing.T) {
	cat := TableII()
	if len(cat) != 108 {
		t.Fatalf("catalog size %d, want 108", len(cat))
	}
	// All circular, 500 km, 53 degrees.
	raanCount := map[int]int{}
	for i, e := range cat {
		if e.Eccentricity != 0 {
			t.Fatalf("satellite %d eccentric", i)
		}
		if math.Abs(e.SemiMajorAxisM-6871e3) > 1 {
			t.Fatalf("satellite %d semi-major axis %g", i, e.SemiMajorAxisM)
		}
		if math.Abs(geo.Deg(e.InclinationRad)-53) > 1e-9 {
			t.Fatalf("satellite %d inclination %g", i, geo.Deg(e.InclinationRad))
		}
		raanCount[int(math.Round(geo.Deg(e.RAANRad)))]++
	}
	// 18 planes, 20 degrees apart, 6 satellites each.
	if len(raanCount) != 18 {
		t.Fatalf("distinct RAANs %d, want 18", len(raanCount))
	}
	for raan := 0; raan < 360; raan += 20 {
		if raanCount[raan] != 6 {
			t.Fatalf("plane RAAN %d has %d satellites, want 6", raan, raanCount[raan])
		}
	}
	// First 36 satellites span only the base 6 planes.
	for i := 0; i < 36; i++ {
		raan := int(math.Round(geo.Deg(cat[i].RAANRad)))
		if raan%60 != 0 {
			t.Fatalf("satellite %d (first 36) in gap plane RAAN %d", i, raan)
		}
	}
	// No duplicate orbital slots.
	seen := map[[2]int]bool{}
	for i, e := range cat {
		key := [2]int{int(math.Round(geo.Deg(e.RAANRad))), int(math.Round(geo.Deg(e.TrueAnomalyRad)))}
		if seen[key] {
			t.Fatalf("duplicate slot %v at satellite %d", key, i)
		}
		seen[key] = true
	}
}

func TestPaperConstellationSizes(t *testing.T) {
	for n := 6; n <= 108; n += 6 {
		sats, err := PaperConstellation(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(sats) != n {
			t.Fatalf("n=%d returned %d", n, len(sats))
		}
	}
	for _, n := range []int{0, 5, 7, 114, -6} {
		if _, err := PaperConstellation(n); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
}

func TestWalkerDelta(t *testing.T) {
	sats, err := WalkerDelta(36, 6, 1, 53, PaperAltitudeM)
	if err != nil {
		t.Fatal(err)
	}
	if len(sats) != 36 {
		t.Fatalf("got %d satellites", len(sats))
	}
	if _, err := WalkerDelta(35, 6, 0, 53, PaperAltitudeM); err == nil {
		t.Error("non-divisible Walker accepted")
	}
	if _, err := WalkerDelta(0, 0, 0, 53, PaperAltitudeM); err == nil {
		t.Error("zero Walker accepted")
	}
}

func TestFootprintHalfAngle(t *testing.T) {
	// At 500 km altitude with a 20-degree mask the footprint half-angle is
	// about 9.4 degrees (≈1050 km radius); with 0-degree mask about 21.6.
	got20 := geo.Deg(FootprintHalfAngle(PaperAltitudeM, geo.Rad(20)))
	if got20 < 8.5 || got20 > 10.5 {
		t.Fatalf("half angle at 20° mask = %g°", got20)
	}
	got0 := geo.Deg(FootprintHalfAngle(PaperAltitudeM, 0))
	if got0 < 20 || got0 > 23 {
		t.Fatalf("half angle at 0° mask = %g°", got0)
	}
	if got0 <= got20 {
		t.Fatal("footprint should shrink with a higher mask")
	}
}

func TestGenerateSheet(t *testing.T) {
	sheet, err := GenerateSheet("SAT-001", paperOrbit(), 10*time.Minute, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(sheet.Samples) != 21 {
		t.Fatalf("sample count %d, want 21", len(sheet.Samples))
	}
	if sheet.Duration() != 10*time.Minute {
		t.Fatalf("duration %v", sheet.Duration())
	}
	// Zero-order hold.
	if sheet.At(44*time.Second) != sheet.Samples[1].ECEF {
		t.Fatal("At(44s) should hold the 30s sample")
	}
	if sheet.At(-time.Second) != sheet.Samples[0].ECEF {
		t.Fatal("negative time should clamp to first sample")
	}
	if sheet.At(time.Hour) != sheet.Samples[20].ECEF {
		t.Fatal("overflow time should clamp to last sample")
	}
}

func TestGenerateSheetRejectsBadInputs(t *testing.T) {
	if _, err := GenerateSheet("x", paperOrbit(), time.Minute, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := GenerateSheet("x", paperOrbit(), -time.Minute, time.Second); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := GenerateSheet("x", Elements{SemiMajorAxisM: 1}, time.Minute, time.Second); err == nil {
		t.Error("invalid orbit accepted")
	}
}

func TestGenerateSheets(t *testing.T) {
	sats, _ := PaperConstellation(12)
	sheets, err := GenerateSheets(sats, time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 12 {
		t.Fatalf("%d sheets", len(sheets))
	}
	if sheets[0].Name != "SAT-001" || sheets[11].Name != "SAT-012" {
		t.Fatalf("sheet names %s..%s", sheets[0].Name, sheets[11].Name)
	}
}

func TestConstellationSpread(t *testing.T) {
	// At the exact epoch some slot pairs coincide (different planes cross
	// and true anomalies u and 180°-u sit on the crossing at t=0), so
	// measure spread at a generic instant: minimum pairwise distance must
	// exceed 100 km.
	cat := TableII()
	const when = 137 * time.Second
	minD := math.Inf(1)
	pos := make([]geo.Vec3, len(cat))
	for i, e := range cat {
		pos[i] = e.PositionECI(when)
	}
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if d := pos[i].Distance(pos[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 100e3 {
		t.Fatalf("minimum satellite separation %g km too small", minD/1000)
	}
}
