package orbit

import (
	"testing"
	"time"
)

func BenchmarkPositionECEFCircular(b *testing.B) {
	e := CircularLEO(PaperAltitudeM, PaperInclinationDeg, 60, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.PositionECEF(time.Duration(i) * time.Second)
	}
}

func BenchmarkPositionECEFEccentric(b *testing.B) {
	e := Elements{SemiMajorAxisM: 7000e3, Eccentricity: 0.1, InclinationRad: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.PositionECEF(time.Duration(i) * time.Second)
	}
}

func BenchmarkGenerateSheetFullDay(b *testing.B) {
	e := CircularLEO(PaperAltitudeM, PaperInclinationDeg, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSheet("S", e, Day, DefaultSampleInterval); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIICatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TableII()
	}
}
