package routing

import (
	"math"
	"testing"
)

func diamondGraph(t *testing.T) *Graph {
	// Two disjoint s→d routes plus a direct weak edge.
	g := NewGraph()
	mustAdd(t, g, "s", "a", 0.9)
	mustAdd(t, g, "a", "d", 0.9)
	mustAdd(t, g, "s", "b", 0.8)
	mustAdd(t, g, "b", "d", 0.8)
	mustAdd(t, g, "s", "d", 0.3)
	return g
}

func TestClone(t *testing.T) {
	g := diamondGraph(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone shape differs")
	}
	c.RemoveEdge("s", "a")
	if _, ok := g.Eta("s", "a"); !ok {
		t.Fatal("mutating the clone affected the original")
	}
}

func TestEdgeDisjointPathsDiamond(t *testing.T) {
	g := diamondGraph(t)
	paths, err := EdgeDisjointPaths(g, "s", "d", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3", len(paths))
	}
	// Best first: via a (0.81), via b (0.64), direct (0.3).
	etas := make([]float64, len(paths))
	for i, p := range paths {
		eta, err := g.PathEta(p)
		if err != nil {
			t.Fatal(err)
		}
		etas[i] = eta
	}
	if math.Abs(etas[0]-0.81) > 1e-12 || math.Abs(etas[1]-0.64) > 1e-12 || math.Abs(etas[2]-0.3) > 1e-12 {
		t.Fatalf("path etas %v", etas)
	}
	// Pairwise edge-disjoint.
	used := map[[2]string]bool{}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			if a > b {
				a, b = b, a
			}
			key := [2]string{a, b}
			if used[key] {
				t.Fatalf("edge %v reused across paths", key)
			}
			used[key] = true
		}
	}
}

func TestEdgeDisjointPathsBudget(t *testing.T) {
	g := diamondGraph(t)
	paths, err := EdgeDisjointPaths(g, "s", "d", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("budget ignored: %d paths", len(paths))
	}
}

func TestEdgeDisjointPathsUnreachable(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g, "s", "a", 0.9)
	g.AddNode("d")
	paths, err := EdgeDisjointPaths(g, "s", "d", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("unreachable dst yielded %d paths", len(paths))
	}
}

func TestEdgeDisjointPathsRejectsBadInput(t *testing.T) {
	g := diamondGraph(t)
	if _, err := EdgeDisjointPaths(g, "s", "d", 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := EdgeDisjointPaths(g, "nope", "d", 1); err == nil {
		t.Fatal("unknown src accepted")
	}
	if _, err := EdgeDisjointPaths(g, "s", "s", 1); err == nil {
		t.Fatal("src==dst accepted")
	}
}

func TestMultipathSuccessProbability(t *testing.T) {
	g := diamondGraph(t)
	paths, err := EdgeDisjointPaths(g, "s", "d", 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.MultipathSuccessProbability(paths)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.81)*(1-0.64)*(1-0.3)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("combined probability %g, want %g", p, want)
	}
	// More paths can only help.
	single, err := g.MultipathSuccessProbability(paths[:1])
	if err != nil {
		t.Fatal(err)
	}
	if p <= single {
		t.Fatal("adding disjoint paths did not raise success probability")
	}
	// Bad path reported.
	if _, err := g.MultipathSuccessProbability([][]string{{"s", "zzz"}}); err == nil {
		t.Fatal("bogus path accepted")
	}
}

func TestEdgeDisjointOnRandomGraphs(t *testing.T) {
	// Property: returned paths are simple, edge-disjoint, and etas
	// non-increasing.
	g := benchGraph(20)
	nodes := g.Nodes()
	src, dst := nodes[0], nodes[len(nodes)-1]
	paths, err := EdgeDisjointPaths(g, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	used := map[[2]string]bool{}
	for _, p := range paths {
		eta, err := g.PathEta(p)
		if err != nil {
			t.Fatal(err)
		}
		if eta > prev+1e-12 {
			t.Fatalf("path etas not non-increasing: %g after %g", eta, prev)
		}
		prev = eta
		seen := map[string]bool{}
		for i, n := range p {
			if seen[n] {
				t.Fatalf("non-simple path %v", p)
			}
			seen[n] = true
			if i+1 < len(p) {
				a, b := p[i], p[i+1]
				if a > b {
					a, b = b, a
				}
				if used[[2]string{a, b}] {
					t.Fatalf("edge reuse in %v", p)
				}
				used[[2]string{a, b}] = true
			}
		}
	}
}
