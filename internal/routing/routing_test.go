package routing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func lineGraph(etas ...float64) *Graph {
	g := NewGraph()
	for i, eta := range etas {
		a := fmt.Sprintf("n%d", i)
		b := fmt.Sprintf("n%d", i+1)
		if err := g.AddEdge(a, b, eta); err != nil {
			panic(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge("a", "b", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c", 0.8); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d, want 3/2", g.NumNodes(), g.NumEdges())
	}
	if eta, ok := g.Eta("b", "a"); !ok || eta != 0.9 {
		t.Fatalf("Eta(b,a) = %v,%v", eta, ok)
	}
	if _, ok := g.Eta("a", "c"); ok {
		t.Fatal("a-c should not exist")
	}
	g.RemoveEdge("a", "b")
	if _, ok := g.Eta("a", "b"); ok {
		t.Fatal("edge not removed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges=%d after removal, want 1", g.NumEdges())
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge("a", "a", 0.5); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge("a", "b", -0.1); err == nil {
		t.Error("negative transmissivity accepted")
	}
	if err := g.AddEdge("a", "b", 1.5); err == nil {
		t.Error("transmissivity > 1 accepted")
	}
	if err := g.AddEdge("a", "b", math.NaN()); err == nil {
		t.Error("NaN transmissivity accepted")
	}
}

func TestPathEta(t *testing.T) {
	g := lineGraph(0.9, 0.8, 0.5)
	eta, err := g.PathEta([]string{"n0", "n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.8 * 0.5
	if math.Abs(eta-want) > 1e-12 {
		t.Fatalf("PathEta %g, want %g", eta, want)
	}
	if _, err := g.PathEta([]string{"n0", "n2"}); err == nil {
		t.Fatal("missing edge not reported")
	}
}

func TestBellmanFordLine(t *testing.T) {
	g := lineGraph(0.9, 0.8)
	tbl := BellmanFord(g, DefaultEpsilon)
	path, err := tbl.Path("n0", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != "n0" || path[1] != "n1" || path[2] != "n2" {
		t.Fatalf("path %v", path)
	}
	cost, err := tbl.Cost("n0", "n2")
	if err != nil {
		t.Fatal(err)
	}
	want := CostFromEta(0.9, DefaultEpsilon) + CostFromEta(0.8, DefaultEpsilon)
	if math.Abs(cost-want) > 1e-9 {
		t.Fatalf("cost %g, want %g", cost, want)
	}
}

func TestBellmanFordPrefersHighTransmissivity(t *testing.T) {
	// Two routes a->b: direct with low eta, and via r with two high-eta
	// hops. With the 1/(eta+eps) metric the direct edge costs 1/0.2 = 5,
	// the relay route costs 1/0.9+1/0.9 ≈ 2.22, so routing goes via r.
	g := NewGraph()
	mustAdd(t, g, "a", "b", 0.2)
	mustAdd(t, g, "a", "r", 0.9)
	mustAdd(t, g, "r", "b", 0.9)
	tbl := BellmanFord(g, DefaultEpsilon)
	path, err := tbl.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != "r" {
		t.Fatalf("expected relay path, got %v", path)
	}
}

func TestBellmanFordUnreachable(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g, "a", "b", 0.9)
	g.AddNode("island")
	tbl := BellmanFord(g, DefaultEpsilon)
	if tbl.Reachable("a", "island") {
		t.Fatal("island should be unreachable")
	}
	if _, err := tbl.Path("a", "island"); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestBellmanFordSelfPath(t *testing.T) {
	g := lineGraph(0.9)
	tbl := BellmanFord(g, DefaultEpsilon)
	path, err := tbl.Path("n0", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != "n0" {
		t.Fatalf("self path %v", path)
	}
	c, _ := tbl.Cost("n0", "n0")
	if c != 0 {
		t.Fatalf("self cost %g", c)
	}
}

// randomConnectedGraph builds a connected random graph: a random spanning
// tree plus extra random edges, with transmissivities in [0.1, 1].
func randomConnectedGraph(rng *rand.Rand, n, extraEdges int) *Graph {
	g := NewGraph()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("v%02d", i)
		g.AddNode(ids[i])
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		_ = g.AddEdge(ids[i], ids[j], 0.1+0.9*rng.Float64())
	}
	for k := 0; k < extraEdges; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = g.AddEdge(ids[i], ids[j], 0.1+0.9*rng.Float64())
		}
	}
	return g
}

func TestAlgorithm1MatchesClassicBellmanFord(t *testing.T) {
	// The paper's distance-vector Algorithm 1 must converge to the same
	// optimal costs as the textbook single-source algorithm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomConnectedGraph(rng, n, n)
		tbl := BellmanFord(g, DefaultEpsilon)
		for _, src := range g.Nodes() {
			classic, err := ClassicBellmanFord(g, src, InverseEtaCost(DefaultEpsilon))
			if err != nil {
				return false
			}
			for _, dst := range g.Nodes() {
				c1, err := tbl.Cost(src, dst)
				if err != nil {
					return false
				}
				if math.Abs(c1-classic.Dist[dst]) > 1e-6*(1+classic.Dist[dst]) {
					t.Logf("seed %d: cost mismatch %s->%s: %g vs %g", seed, src, dst, c1, classic.Dist[dst])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraMatchesClassicBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomConnectedGraph(rng, n, 2*n)
		for _, cost := range []CostFunc{InverseEtaCost(0), NegLogEtaCost(0), HopCountCost()} {
			src := g.Nodes()[rng.Intn(n)]
			d, err := Dijkstra(g, src, cost)
			if err != nil {
				return false
			}
			b, err := ClassicBellmanFord(g, src, cost)
			if err != nil {
				return false
			}
			for _, dst := range g.Nodes() {
				if math.Abs(d.Dist[dst]-b.Dist[dst]) > 1e-9*(1+b.Dist[dst]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPathCostConsistency(t *testing.T) {
	// The cost reported by the tables must equal the sum of per-edge
	// costs along the reconstructed path.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomConnectedGraph(rng, n, n)
		tbl := BellmanFord(g, DefaultEpsilon)
		nodes := g.Nodes()
		for trial := 0; trial < 10; trial++ {
			src := nodes[rng.Intn(n)]
			dst := nodes[rng.Intn(n)]
			path, err := tbl.Path(src, dst)
			if err != nil {
				return false
			}
			etas, err := g.EdgeEtas(path)
			if err != nil {
				return false
			}
			var sum float64
			for _, eta := range etas {
				sum += CostFromEta(eta, DefaultEpsilon)
			}
			cost, _ := tbl.Cost(src, dst)
			if math.Abs(sum-cost) > 1e-6*(1+cost) {
				t.Logf("seed %d: path cost %g != table cost %g (path %v)", seed, sum, cost, path)
				return false
			}
			// Paths must be simple.
			seen := map[string]bool{}
			for _, p := range path {
				if seen[p] {
					t.Logf("seed %d: non-simple path %v", seed, path)
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBestTransmissivityPathOptimal(t *testing.T) {
	// Brute-force check on a small graph: BestTransmissivityPath must find
	// the maximum-product path.
	rng := rand.New(rand.NewSource(99))
	g := randomConnectedGraph(rng, 7, 7)
	nodes := g.Nodes()
	src, dst := nodes[0], nodes[len(nodes)-1]
	_, eta, err := BestTransmissivityPath(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	best := bruteBestEta(g, src, dst)
	if math.Abs(eta-best) > 1e-9 {
		t.Fatalf("best path eta %g, brute force %g", eta, best)
	}
}

// bruteBestEta enumerates all simple paths (small graphs only).
func bruteBestEta(g *Graph, src, dst string) float64 {
	best := 0.0
	var dfs func(cur string, eta float64, visited map[string]bool)
	dfs = func(cur string, eta float64, visited map[string]bool) {
		if cur == dst {
			if eta > best {
				best = eta
			}
			return
		}
		for _, nb := range g.Neighbors(cur) {
			if visited[nb] {
				continue
			}
			e, _ := g.Eta(cur, nb)
			visited[nb] = true
			dfs(nb, eta*e, visited)
			visited[nb] = false
		}
	}
	dfs(src, 1, map[string]bool{src: true})
	return best
}

func TestInverseEtaMetricCanBeSuboptimalForProduct(t *testing.T) {
	// Documented property motivating the ablation: the paper's 1/(η+ε)
	// metric does not always maximize end-to-end transmissivity. Two
	// moderately lossy hops can have lower summed inverse cost than one
	// very good + one bad hop, while the product ordering differs.
	g := NewGraph()
	mustAdd(t, g, "s", "m1", 0.5)
	mustAdd(t, g, "m1", "d", 0.5) // product 0.25, cost 2+2 = 4
	mustAdd(t, g, "s", "m2", 1.0)
	mustAdd(t, g, "m2", "d", 0.28) // product 0.28, cost 1+3.57 = 4.57
	tbl := BellmanFord(g, DefaultEpsilon)
	path, err := tbl.Path("s", "d")
	if err != nil {
		t.Fatal(err)
	}
	etaPaper, _ := g.PathEta(path)
	_, etaBest, err := BestTransmissivityPath(g, "s", "d")
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != "m1" {
		t.Fatalf("expected the paper metric to pick the m1 route, got %v", path)
	}
	if !(etaBest > etaPaper) {
		t.Fatalf("expected a strictly better product path (%g vs %g)", etaBest, etaPaper)
	}
}

func mustAdd(t *testing.T, g *Graph, a, b string, eta float64) {
	t.Helper()
	if err := g.AddEdge(a, b, eta); err != nil {
		t.Fatal(err)
	}
}
