package routing

import (
	"container/heap"
	"fmt"
	"math"
)

// CostFunc maps an edge transmissivity to an additive cost. All costs must
// be positive.
type CostFunc func(eta float64) float64

// InverseEtaCost returns the paper's cost function 1/(η+ε).
func InverseEtaCost(epsilon float64) CostFunc {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	return func(eta float64) float64 { return CostFromEta(eta, epsilon) }
}

// NegLogEtaCost returns −log(η) with η clamped to [ε, 1]. Minimizing its
// sum maximizes the product of transmissivities, i.e. finds the true best
// end-to-end transmissivity path. Used as the optimal baseline in the
// routing-metric ablation.
func NegLogEtaCost(epsilon float64) CostFunc {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	return func(eta float64) float64 {
		if eta < epsilon {
			eta = epsilon
		} else if eta > 1 {
			eta = 1
		}
		return -math.Log(eta)
	}
}

// HopCountCost charges 1 per edge regardless of transmissivity.
func HopCountCost() CostFunc {
	return func(float64) float64 { return 1 }
}

// SingleSourceResult holds distances and predecessors from one source.
type SingleSourceResult struct {
	Source string
	Dist   map[string]float64
	Prev   map[string]string
}

// ClassicBellmanFord runs the textbook single-source Bellman-Ford with the
// given cost function. It serves as a correctness oracle for the paper's
// distance-vector Algorithm 1.
func ClassicBellmanFord(g *Graph, src string, cost CostFunc) (*SingleSourceResult, error) {
	si, ok := g.index[src]
	if !ok {
		return nil, fmt.Errorf("routing: unknown source %q", src)
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[si] = 0
	for round := 0; round < n-1; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, v := range g.neighborIndices(u) {
				eta, _ := g.etaAt(u, v)
				c := cost(eta)
				if c < 0 {
					return nil, fmt.Errorf("routing: negative edge cost %g", c)
				}
				if dist[u]+c < dist[v] {
					dist[v] = dist[u] + c
					prev[v] = u
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return g.packResult(src, dist, prev), nil
}

// Dijkstra runs the standard priority-queue Dijkstra with the given cost
// function.
func Dijkstra(g *Graph, src string, cost CostFunc) (*SingleSourceResult, error) {
	si, ok := g.index[src]
	if !ok {
		return nil, fmt.Errorf("routing: unknown source %q", src)
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[si] = 0
	pq := &nodeHeap{items: []heapItem{{node: si, dist: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, v := range g.neighborIndices(u) {
			eta, _ := g.etaAt(u, v)
			c := cost(eta)
			if c < 0 {
				return nil, fmt.Errorf("routing: negative edge cost %g", c)
			}
			if dist[u]+c < dist[v] {
				dist[v] = dist[u] + c
				prev[v] = u
				heap.Push(pq, heapItem{node: v, dist: dist[v]})
			}
		}
	}
	return g.packResult(src, dist, prev), nil
}

func (g *Graph) packResult(src string, dist []float64, prev []int) *SingleSourceResult {
	res := &SingleSourceResult{
		Source: src,
		Dist:   make(map[string]float64, len(dist)),
		Prev:   make(map[string]string, len(prev)),
	}
	for i, id := range g.ids {
		res.Dist[id] = dist[i]
		if prev[i] >= 0 {
			res.Prev[id] = g.ids[prev[i]]
		}
	}
	return res
}

// PathTo reconstructs the path from the result's source to dst.
func (r *SingleSourceResult) PathTo(dst string) ([]string, error) {
	d, ok := r.Dist[dst]
	if !ok {
		return nil, fmt.Errorf("routing: unknown destination %q", dst)
	}
	if math.IsInf(d, 1) {
		return nil, fmt.Errorf("routing: %s unreachable from %s", dst, r.Source)
	}
	var rev []string
	for cur := dst; ; {
		rev = append(rev, cur)
		if cur == r.Source {
			break
		}
		next, ok := r.Prev[cur]
		if !ok {
			return nil, fmt.Errorf("routing: broken predecessor chain at %q", cur)
		}
		if len(rev) > len(r.Dist) {
			return nil, fmt.Errorf("routing: predecessor cycle")
		}
		cur = next
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// BestTransmissivityPath returns the path from src to dst with maximal
// end-to-end transmissivity (Dijkstra over −log η weights) along with that
// transmissivity.
func BestTransmissivityPath(g *Graph, src, dst string) ([]string, float64, error) {
	res, err := Dijkstra(g, src, NegLogEtaCost(0))
	if err != nil {
		return nil, 0, err
	}
	path, err := res.PathTo(dst)
	if err != nil {
		return nil, 0, err
	}
	eta, err := g.PathEta(path)
	if err != nil {
		return nil, 0, err
	}
	return path, eta, nil
}

type heapItem struct {
	node int
	dist float64
}

type nodeHeap struct{ items []heapItem }

func (h *nodeHeap) Len() int           { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x any)         { h.items = append(h.items, x.(heapItem)) }
func (h *nodeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
