package routing

import (
	"fmt"
	"testing"
)

// TestResetAfterGrowth drives Reset through graphs that grew to different
// sizes first: the recycled storage must behave exactly like a fresh graph
// for every subsequent shape, including shrinking back below the old
// capacity (where the matrix slice is reused) and growing past it.
func TestResetAfterGrowth(t *testing.T) {
	cases := []struct {
		name          string
		before, after int // node counts built before and after Reset
	}{
		{"shrink", 8, 3},
		{"same size", 5, 5},
		{"grow", 3, 9},
		{"empty before", 0, 4},
		{"single node after", 6, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph()
			for i := 0; i < tc.before; i++ {
				g.AddNode(fmt.Sprintf("old%d", i))
			}
			for i := 1; i < tc.before; i++ {
				if err := g.AddEdgeByIndex(0, i, 0.5); err != nil {
					t.Fatal(err)
				}
			}
			g.Reset()
			if g.NumNodes() != 0 || g.NumEdges() != 0 {
				t.Fatalf("Reset left %d nodes / %d edges", g.NumNodes(), g.NumEdges())
			}

			for i := 0; i < tc.after; i++ {
				if got := g.AddNode(fmt.Sprintf("new%d", i)); got != i {
					t.Fatalf("AddNode #%d after Reset returned index %d", i, got)
				}
			}
			for i := 1; i < tc.after; i++ {
				if err := g.AddEdgeByIndex(i-1, i, 0.9); err != nil {
					t.Fatal(err)
				}
			}
			wantEdges := tc.after - 1
			if wantEdges < 0 {
				wantEdges = 0
			}
			if g.NumEdges() != wantEdges {
				t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), wantEdges)
			}
			// No edge may involve a pre-Reset identity, and the chain built
			// after Reset must be exactly what EachEdge reports.
			seen := 0
			g.EachEdge(func(i, j int, eta float64) {
				seen++
				if j != i+1 || eta != 0.9 {
					t.Fatalf("unexpected edge (%d,%d,%v) after Reset", i, j, eta)
				}
			})
			if seen != wantEdges {
				t.Fatalf("EachEdge saw %d edges, want %d", seen, wantEdges)
			}
			for i := 0; i < tc.before; i++ {
				id := fmt.Sprintf("old%d", i)
				if g.HasNode(id) {
					t.Fatalf("pre-Reset node %q still present", id)
				}
			}
		})
	}
}

// TestAddEdgeByIndexAliasingAcrossRestride grows the node set after edges
// exist — forcing ensureMat's live-edge re-stride — and checks that no edge
// moves, appears or disappears under the new stride. A buggy in-place
// re-stride would alias old rows onto new ones.
func TestAddEdgeByIndexAliasingAcrossRestride(t *testing.T) {
	cases := []struct {
		name  string
		base  int // nodes before the first edges
		grow  []int
		first float64
	}{
		{"grow by one", 3, []int{1}, 0.7},
		{"grow by many", 2, []int{5}, 0.6},
		{"grow repeatedly", 3, []int{1, 2, 3}, 0.8},
		{"double the stride", 4, []int{4}, 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph()
			for i := 0; i < tc.base; i++ {
				g.AddNode(fmt.Sprintf("n%d", i))
			}
			want := map[[2]int]float64{}
			// A dense clique over the base nodes maximizes the rows the
			// re-stride has to move.
			for i := 0; i < tc.base; i++ {
				for j := i + 1; j < tc.base; j++ {
					eta := tc.first - 0.01*float64(i*tc.base+j)
					if err := g.AddEdgeByIndex(i, j, eta); err != nil {
						t.Fatal(err)
					}
					want[[2]int{i, j}] = eta
				}
			}
			n := tc.base
			for _, extra := range tc.grow {
				for k := 0; k < extra; k++ {
					g.AddNode(fmt.Sprintf("n%d", n+k))
				}
				n += extra
				// The first index-based edge after growth triggers the
				// re-stride with live edges.
				eta := 0.5 / float64(n)
				if err := g.AddEdgeByIndex(0, n-1, eta); err != nil {
					t.Fatal(err)
				}
				want[[2]int{0, n - 1}] = eta

				if g.NumEdges() != len(want) {
					t.Fatalf("NumEdges = %d, want %d after growing to %d nodes", g.NumEdges(), len(want), n)
				}
				got := map[[2]int]float64{}
				g.EachEdge(func(i, j int, eta float64) { got[[2]int{i, j}] = eta })
				if len(got) != len(want) {
					t.Fatalf("EachEdge saw %d edges, want %d", len(got), len(want))
				}
				for key, eta := range want {
					if got[key] != eta {
						t.Fatalf("edge %v = %v after re-stride, want %v", key, got[key], eta)
					}
				}
			}
		})
	}
}

// TestIndexOfAfterEviction pins what IndexOf, Eta, Neighbors and RemoveEdge
// report for nodes that were evicted by Reset, never materialized into the
// matrix, or simply never existed.
func TestIndexOfAfterEviction(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.AddEdge("a", "b", 0.5); err != nil {
		t.Fatal(err)
	}
	g.Reset()
	g.AddNode("b") // only one survivor, reusing an old ID at a new index

	cases := []struct {
		name      string
		id        string
		wantIdx   int
		wantFound bool
	}{
		{"evicted", "a", 0, false},
		{"re-added at new index", "b", 0, true},
		{"never existed", "zz", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i, ok := g.IndexOf(tc.id)
			if ok != tc.wantFound {
				t.Fatalf("IndexOf(%q) found = %v, want %v", tc.id, ok, tc.wantFound)
			}
			if ok && i != tc.wantIdx {
				t.Fatalf("IndexOf(%q) = %d, want %d", tc.id, i, tc.wantIdx)
			}
			if got := g.HasNode(tc.id); got != tc.wantFound {
				t.Fatalf("HasNode(%q) = %v, want %v", tc.id, got, tc.wantFound)
			}
		})
	}

	// Queries touching evicted IDs degrade to "absent", never panic.
	if _, ok := g.Eta("a", "b"); ok {
		t.Error("Eta over an evicted node reported an edge")
	}
	if nbrs := g.Neighbors("a"); nbrs != nil {
		t.Errorf("Neighbors of evicted node = %v", nbrs)
	}
	g.RemoveEdge("a", "b") // no-op, must not underflow the edge count
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after removing an evicted edge", g.NumEdges())
	}

	// A node added after the last edge operation is indexed but not yet in
	// the matrix: edge queries must treat it as isolated, not out of range.
	g.AddNode("late")
	if i, ok := g.IndexOf("late"); !ok || i != 1 {
		t.Fatalf("IndexOf(late) = %d,%v", i, ok)
	}
	if _, ok := g.Eta("b", "late"); ok {
		t.Error("unmaterialized node has an edge")
	}
	if nbrs := g.Neighbors("late"); nbrs != nil {
		t.Errorf("Neighbors(late) = %v before any edge op", nbrs)
	}
	g.RemoveEdge("b", "late") // indices beyond matN: must be a no-op
	if err := g.AddEdge("b", "late", 0.25); err != nil {
		t.Fatal(err)
	}
	if eta, ok := g.Eta("b", "late"); !ok || eta != 0.25 {
		t.Fatalf("Eta(b,late) = %v,%v after materialization", eta, ok)
	}
}
