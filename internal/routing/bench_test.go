package routing

import (
	"math/rand"
	"testing"
)

// benchGraph approximates a QNTN snapshot: 31 ground nodes in three fiber
// cliques plus relays with dynamic links.
func benchGraph(relays int) *Graph {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 31+relays, 4*(31+relays))
	return g
}

func BenchmarkBellmanFordAlgorithm1_40Nodes(b *testing.B) {
	g := benchGraph(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BellmanFord(g, DefaultEpsilon)
	}
}

func BenchmarkBellmanFordAlgorithm1_139Nodes(b *testing.B) {
	g := benchGraph(108)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BellmanFord(g, DefaultEpsilon)
	}
}

func BenchmarkClassicBellmanFord139Nodes(b *testing.B) {
	g := benchGraph(108)
	cost := InverseEtaCost(DefaultEpsilon)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClassicBellmanFord(g, nodes[i%len(nodes)], cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstra139Nodes(b *testing.B) {
	g := benchGraph(108)
	cost := InverseEtaCost(DefaultEpsilon)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dijkstra(g, nodes[i%len(nodes)], cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathReconstruction(b *testing.B) {
	g := benchGraph(108)
	tables := BellmanFord(g, DefaultEpsilon)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		dst := nodes[(i*7+13)%len(nodes)]
		if _, err := tables.Path(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
