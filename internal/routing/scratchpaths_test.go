package routing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// tieGraph builds a random graph whose transmissivities come from a tiny
// set, so −log η costs collide constantly and equal-cost predecessor
// choices (the hard part of scratch/baseline equivalence) are exercised on
// nearly every source.
func tieGraph(t *testing.T, rng *rand.Rand, n int, p float64) *Graph {
	t.Helper()
	etas := []float64{0.25, 0.5, 0.5, 1.0} // repeats skew toward ties
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(nodeName(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(nodeName(i), nodeName(j), etas[rng.Intn(len(etas))]); err != nil {
					t.Fatalf("AddEdge: %v", err)
				}
			}
		}
	}
	return g
}

func nodeName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}

// TestDijkstraScratchMatchesBaseline pins the scratch replica against the
// map-packed heap baseline: bit-identical distances AND predecessors, on
// tie-heavy graphs, from every source, under both cost metrics.
func TestDijkstraScratchMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costs := map[string]CostFunc{
		"neglog":  NegLogEtaCost(0),
		"inverse": InverseEtaCost(0),
	}
	var scratch DijkstraScratch
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(24)
		g := tieGraph(t, rng, n, 0.3)
		for name, cost := range costs {
			for si := 0; si < n; si++ {
				src := nodeName(si)
				want, err := Dijkstra(g, src, cost)
				if err != nil {
					t.Fatalf("Dijkstra: %v", err)
				}
				scratch.run(g, si, cost, nil, -1, -1)
				for i, id := range g.ids {
					if scratch.dist[i] != want.Dist[id] && !(math.IsInf(scratch.dist[i], 1) && math.IsInf(want.Dist[id], 1)) {
						t.Fatalf("trial %d cost %s src %s: dist[%s] = %v, baseline %v",
							trial, name, src, id, scratch.dist[i], want.Dist[id])
					}
					var wantPrev string
					if p := scratch.prev[i]; p >= 0 {
						wantPrev = g.ids[p]
					}
					if wantPrev != want.Prev[id] {
						t.Fatalf("trial %d cost %s src %s: prev[%s] = %q, baseline %q",
							trial, name, src, id, wantPrev, want.Prev[id])
					}
				}
			}
		}
	}
}

// refDisjointPaths is the clone-and-delete reference for DisjointScratch:
// delete every incident edge of a consumed path's interior vertices (and
// the direct src–dst edge when the path is a single hop), then re-run the
// baseline Dijkstra. The oracletest protocol reference uses this same
// procedure verbatim.
func refDisjointPaths(t *testing.T, g *Graph, primary []string, k int) [][]string {
	t.Helper()
	work := g.Clone()
	src, dst := primary[0], primary[len(primary)-1]
	consume := func(path []string) {
		for i := 1; i+1 < len(path); i++ {
			for _, nb := range work.Neighbors(path[i]) {
				work.RemoveEdge(path[i], nb)
			}
		}
		if len(path) == 2 {
			work.RemoveEdge(src, dst)
		}
	}
	paths := [][]string{primary}
	consume(primary)
	for len(paths) < k {
		res, err := Dijkstra(work, src, NegLogEtaCost(0))
		if err != nil {
			t.Fatalf("reference Dijkstra: %v", err)
		}
		path, err := res.PathTo(dst)
		if err != nil {
			break // unreachable in the residual graph: done
		}
		paths = append(paths, path)
		consume(path)
	}
	return paths
}

// TestDisjointScratchMatchesReference pins blocked-flag extraction against
// clone-and-delete extraction across random graphs, endpoints and budgets.
func TestDisjointScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ds DisjointScratch
	checked := 0
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(20)
		g := tieGraph(t, rng, n, 0.35)
		for pair := 0; pair < 5; pair++ {
			src, dst := nodeName(rng.Intn(n)), nodeName(rng.Intn(n))
			if src == dst {
				continue
			}
			primary, _, err := BestTransmissivityPath(g, src, dst)
			if err != nil {
				continue // unreachable pair
			}
			k := 1 + rng.Intn(4)
			want := refDisjointPaths(t, g, primary, k)
			got, err := ds.Extract(g, primary, k)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s->%s k=%d: scratch %v, reference %v", trial, src, dst, k, got, want)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d reachable pairs exercised; generator too sparse", checked)
	}
}

// TestDisjointScratchDirectEdge pins the single-hop alternative: when the
// best disjoint alternative is the direct src–dst edge (no interior
// vertices to block), extraction must consume that edge and terminate
// rather than re-extracting it forever.
func TestDisjointScratchDirectEdge(t *testing.T) {
	g := NewGraph()
	// Primary a-m-b (η product 0.81) beats direct a-b (0.5); the direct
	// edge is the only disjoint alternative.
	for _, e := range []struct {
		a, b string
		eta  float64
	}{{"a", "m", 0.9}, {"m", "b", 0.9}, {"a", "b", 0.5}} {
		if err := g.AddEdge(e.a, e.b, e.eta); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	primary := []string{"a", "m", "b"}
	var ds DisjointScratch
	got, err := ds.Extract(g, primary, 5)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := [][]string{{"a", "m", "b"}, {"a", "b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Extract = %v, want %v", got, want)
	}
}

// TestDisjointScratchReuse verifies a reused scratch gives identical
// results to a fresh one (state from earlier extractions must not leak).
func TestDisjointScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := tieGraph(t, rng, 18, 0.4)
	var reused DisjointScratch
	type query struct {
		primary []string
		k       int
	}
	var queries []query
	for i := 0; i < 12; i++ {
		src, dst := nodeName(rng.Intn(18)), nodeName(rng.Intn(18))
		if src == dst {
			continue
		}
		if p, _, err := BestTransmissivityPath(g, src, dst); err == nil {
			queries = append(queries, query{p, 1 + rng.Intn(4)})
		}
	}
	for qi, q := range queries {
		var fresh DisjointScratch
		want, err := fresh.Extract(g, q.primary, q.k)
		if err != nil {
			t.Fatalf("fresh Extract: %v", err)
		}
		got, err := reused.Extract(g, q.primary, q.k)
		if err != nil {
			t.Fatalf("reused Extract: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: reused %v, fresh %v", qi, got, want)
		}
	}
}

// TestEdgeEtasIntoMatchesEdgeEtas pins the allocation-free variant against
// the allocating one, including the reuse path.
func TestEdgeEtasIntoMatchesEdgeEtas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tieGraph(t, rng, 15, 0.4)
	buf := make([]float64, 0, 8)
	for i := 0; i < 20; i++ {
		src, dst := nodeName(rng.Intn(15)), nodeName(rng.Intn(15))
		if src == dst {
			continue
		}
		path, _, err := BestTransmissivityPath(g, src, dst)
		if err != nil {
			continue
		}
		want, err := g.EdgeEtas(path)
		if err != nil {
			t.Fatalf("EdgeEtas: %v", err)
		}
		got, err := g.EdgeEtasInto(buf[:0], path)
		if err != nil {
			t.Fatalf("EdgeEtasInto: %v", err)
		}
		buf = got
		if !reflect.DeepEqual(append([]float64(nil), got...), want) {
			t.Fatalf("EdgeEtasInto = %v, EdgeEtas = %v", got, want)
		}
	}
}
