// Package routing implements the paper's entanglement routing layer: the
// distance-vector Bellman-Ford of Algorithm 1 with the 1/(η+ε) cost metric,
// plus two baselines used by the ablation benchmarks — classic single-source
// Bellman-Ford and Dijkstra on −log η weights (which finds the true
// maximum-transmissivity path, since transmissivities multiply along a
// path).
package routing

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an undirected graph whose edges carry a transmissivity
// η ∈ [0, 1]. Nodes are identified by string IDs.
type Graph struct {
	ids   []string
	index map[string]int
	adj   []map[int]float64 // adj[i][j] = transmissivity of edge i-j
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node if not already present and returns its dense
// index.
func (g *Graph) AddNode(id string) int {
	if i, ok := g.index[id]; ok {
		return i
	}
	i := len(g.ids)
	g.ids = append(g.ids, id)
	g.index[id] = i
	g.adj = append(g.adj, make(map[int]float64))
	return i
}

// AddEdge inserts (or updates) the undirected edge a-b with the given
// transmissivity. Nodes are created as needed.
func (g *Graph) AddEdge(a, b string, eta float64) error {
	if a == b {
		return fmt.Errorf("routing: self-loop on %q", a)
	}
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return fmt.Errorf("routing: transmissivity %g outside [0,1] for edge %s-%s", eta, a, b)
	}
	i, j := g.AddNode(a), g.AddNode(b)
	g.adj[i][j] = eta
	g.adj[j][i] = eta
	return nil
}

// RemoveEdge deletes the undirected edge a-b if present.
func (g *Graph) RemoveEdge(a, b string) {
	i, oki := g.index[a]
	j, okj := g.index[b]
	if !oki || !okj {
		return
	}
	delete(g.adj[i], j)
	delete(g.adj[j], i)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	var n int
	for _, m := range g.adj {
		n += len(m)
	}
	return n / 2
}

// Nodes returns the node IDs in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.ids))
	copy(out, g.ids)
	return out
}

// HasNode reports whether id is present.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.index[id]
	return ok
}

// Eta returns the transmissivity of edge a-b and whether the edge exists.
func (g *Graph) Eta(a, b string) (float64, bool) {
	i, oki := g.index[a]
	j, okj := g.index[b]
	if !oki || !okj {
		return 0, false
	}
	eta, ok := g.adj[i][j]
	return eta, ok
}

// Neighbors returns the IDs adjacent to id, sorted for determinism.
func (g *Graph) Neighbors(id string) []string {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, g.ids[j])
	}
	sort.Strings(out)
	return out
}

// neighborIndices returns adjacent dense indices, sorted for determinism.
func (g *Graph) neighborIndices(i int) []int {
	out := make([]int, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// PathEta returns the end-to-end transmissivity (product of edge
// transmissivities) along the given node path, or an error if a hop is
// missing.
func (g *Graph) PathEta(path []string) (float64, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("routing: empty path")
	}
	eta := 1.0
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.Eta(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("routing: path uses missing edge %s-%s", path[i], path[i+1])
		}
		eta *= e
	}
	return eta, nil
}

// EdgeEtas returns the per-hop transmissivities along path.
func (g *Graph) EdgeEtas(path []string) ([]float64, error) {
	if len(path) < 2 {
		return nil, nil
	}
	out := make([]float64, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.Eta(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("routing: path uses missing edge %s-%s", path[i], path[i+1])
		}
		out = append(out, e)
	}
	return out, nil
}
