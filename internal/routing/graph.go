// Package routing implements the paper's entanglement routing layer: the
// distance-vector Bellman-Ford of Algorithm 1 with the 1/(η+ε) cost metric,
// plus two baselines used by the ablation benchmarks — classic single-source
// Bellman-Ford and Dijkstra on −log η weights (which finds the true
// maximum-transmissivity path, since transmissivities multiply along a
// path).
package routing

import (
	"fmt"
	"math"
	"sort"
)

// absentEdge is the adjacency-matrix sentinel for "no edge". Valid
// transmissivities live in [0,1], so any negative value is unambiguous.
const absentEdge = -1

// Graph is an undirected graph whose edges carry a transmissivity
// η ∈ [0, 1]. Nodes are identified by string IDs.
//
// The adjacency is a dense n×n matrix backed by a single slice, sized for
// the simulator's topology snapshots (O(100) nodes, re-evaluated at
// thousands of instants). Reset and ResetEdges let callers reuse one Graph
// across snapshots without reallocating; see those methods for the
// invariants.
type Graph struct {
	ids   []string
	index map[string]int
	// mat[i*matN+j] holds the transmissivity of edge i-j, or absentEdge.
	// The matrix is materialized lazily on the first edge operation and
	// covers the first matN nodes; nodes added after that have no edges
	// until the next edge operation re-strides it.
	mat   []float64
	matN  int
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node if not already present and returns its dense
// index. Indices are assigned in insertion order, so re-adding the same ID
// sequence after Reset yields the same indices.
func (g *Graph) AddNode(id string) int {
	if i, ok := g.index[id]; ok {
		return i
	}
	i := len(g.ids)
	g.ids = append(g.ids, id)
	g.index[id] = i
	return i
}

// ensureMat sizes the adjacency matrix for the current node count.
//
//qntn:hotpath steady state (matN == n) returns immediately
func (g *Graph) ensureMat() {
	n := len(g.ids)
	if g.matN == n && g.mat != nil {
		return
	}
	need := n * n
	if g.edges > 0 && g.matN > 0 {
		// Re-striding with live edges: build a fresh matrix and copy the
		// old rows into place (growing in-place would alias old and new
		// strides).
		old, oldN := g.mat, g.matN
		//qntn:coldpath re-stride happens only when nodes were added
		m := make([]float64, need)
		for i := range m {
			m[i] = absentEdge
		}
		for i := 0; i < oldN; i++ {
			copy(m[i*n:i*n+oldN], old[i*oldN:(i+1)*oldN])
		}
		g.mat = m
	} else {
		if cap(g.mat) >= need {
			g.mat = g.mat[:need]
		} else {
			//qntn:coldpath amortized capacity growth
			g.mat = make([]float64, need)
		}
		for i := range g.mat {
			g.mat[i] = absentEdge
		}
	}
	g.matN = n
}

// Reset empties the graph (nodes and edges) while keeping the allocated
// capacity, so a reused Graph reaches a steady state with no per-snapshot
// allocation.
func (g *Graph) Reset() {
	g.ids = g.ids[:0]
	clear(g.index)
	g.mat = g.mat[:0]
	g.matN = 0
	g.edges = 0
}

// ResetEdges removes every edge while keeping the node set, re-striding the
// matrix for nodes added since the last edge operation. This is the
// per-snapshot reuse entry point for topologies whose node set is fixed.
//
//qntn:hotpath once per snapshot; steady state reuses the backing array
func (g *Graph) ResetEdges() {
	n := len(g.ids)
	need := n * n
	if cap(g.mat) >= need {
		g.mat = g.mat[:need]
	} else {
		//qntn:coldpath amortized capacity growth
		g.mat = make([]float64, need)
	}
	for i := range g.mat {
		g.mat[i] = absentEdge
	}
	g.matN = n
	g.edges = 0
}

// setEdge stores eta on the undirected edge i-j; indices must be < matN.
//
//qntn:hotpath
func (g *Graph) setEdge(i, j int, eta float64) {
	if g.mat[i*g.matN+j] < 0 {
		g.edges++
	}
	g.mat[i*g.matN+j] = eta
	g.mat[j*g.matN+i] = eta
}

// AddEdge inserts (or updates) the undirected edge a-b with the given
// transmissivity. Nodes are created as needed.
func (g *Graph) AddEdge(a, b string, eta float64) error {
	if a == b {
		return fmt.Errorf("routing: self-loop on %q", a)
	}
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return fmt.Errorf("routing: transmissivity %g outside [0,1] for edge %s-%s", eta, a, b)
	}
	i, j := g.AddNode(a), g.AddNode(b)
	g.ensureMat()
	g.setEdge(i, j, eta)
	return nil
}

// AddEdgeByIndex inserts (or updates) the undirected edge between the nodes
// at dense indices i and j (as returned by AddNode), skipping the ID
// lookups of AddEdge — the fast path for batched snapshot construction.
//
//qntn:hotpath once per admitted link of every snapshot
func (g *Graph) AddEdgeByIndex(i, j int, eta float64) error {
	if i < 0 || j < 0 || i >= len(g.ids) || j >= len(g.ids) {
		return fmt.Errorf("routing: edge index (%d,%d) outside [0,%d)", i, j, len(g.ids))
	}
	if i == j {
		return fmt.Errorf("routing: self-loop on %q", g.ids[i])
	}
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return fmt.Errorf("routing: transmissivity %g outside [0,1] for edge %s-%s", eta, g.ids[i], g.ids[j])
	}
	g.ensureMat()
	g.setEdge(i, j, eta)
	return nil
}

// RemoveEdge deletes the undirected edge a-b if present.
func (g *Graph) RemoveEdge(a, b string) {
	i, oki := g.index[a]
	j, okj := g.index[b]
	if !oki || !okj || i >= g.matN || j >= g.matN {
		return
	}
	if g.mat[i*g.matN+j] >= 0 {
		g.edges--
	}
	g.mat[i*g.matN+j] = absentEdge
	g.mat[j*g.matN+i] = absentEdge
}

// RemoveEdgeByIndex deletes the undirected edge between the nodes at dense
// indices i and j if present, skipping the ID lookups of RemoveEdge — the
// fast path for incremental (event-driven) snapshot maintenance. Indices
// outside the materialized matrix are a no-op, matching RemoveEdge.
//
//qntn:hotpath once per closed link of every topology event
func (g *Graph) RemoveEdgeByIndex(i, j int) {
	if i < 0 || j < 0 || i >= g.matN || j >= g.matN {
		return
	}
	if g.mat[i*g.matN+j] >= 0 {
		g.edges--
	}
	g.mat[i*g.matN+j] = absentEdge
	g.mat[j*g.matN+i] = absentEdge
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns the node IDs in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.ids))
	copy(out, g.ids)
	return out
}

// HasNode reports whether id is present.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.index[id]
	return ok
}

// IndexOf returns the dense index of id and whether it is present.
//
//qntn:hotpath
func (g *Graph) IndexOf(id string) (int, bool) {
	i, ok := g.index[id]
	return i, ok
}

// etaAt returns the transmissivity between dense indices i and j and
// whether that edge exists.
//
//qntn:hotpath
func (g *Graph) etaAt(i, j int) (float64, bool) {
	if i >= g.matN || j >= g.matN {
		return 0, false
	}
	if v := g.mat[i*g.matN+j]; v >= 0 {
		return v, true
	}
	return 0, false
}

// Eta returns the transmissivity of edge a-b and whether the edge exists.
func (g *Graph) Eta(a, b string) (float64, bool) {
	i, oki := g.index[a]
	j, okj := g.index[b]
	if !oki || !okj {
		return 0, false
	}
	return g.etaAt(i, j)
}

// EachEdge calls fn for every undirected edge (i < j) in deterministic
// index order, without allocating.
//
//qntn:hotpath
func (g *Graph) EachEdge(fn func(i, j int, eta float64)) {
	for i := 0; i < g.matN; i++ {
		row := g.mat[i*g.matN : (i+1)*g.matN]
		for j := i + 1; j < g.matN; j++ {
			if row[j] >= 0 {
				fn(i, j, row[j])
			}
		}
	}
}

// Neighbors returns the IDs adjacent to id, sorted for determinism.
func (g *Graph) Neighbors(id string) []string {
	i, ok := g.index[id]
	if !ok || i >= g.matN {
		return nil
	}
	row := g.mat[i*g.matN : (i+1)*g.matN]
	out := make([]string, 0, 8)
	for j, v := range row {
		if v >= 0 {
			out = append(out, g.ids[j])
		}
	}
	sort.Strings(out)
	return out
}

// neighborIndices returns adjacent dense indices in ascending order.
func (g *Graph) neighborIndices(i int) []int {
	if i >= g.matN {
		return nil
	}
	row := g.mat[i*g.matN : (i+1)*g.matN]
	var out []int
	for j, v := range row {
		if v >= 0 {
			out = append(out, j)
		}
	}
	return out
}

// PathEta returns the end-to-end transmissivity (product of edge
// transmissivities) along the given node path, or an error if a hop is
// missing.
func (g *Graph) PathEta(path []string) (float64, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("routing: empty path")
	}
	eta := 1.0
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.Eta(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("routing: path uses missing edge %s-%s", path[i], path[i+1])
		}
		eta *= e
	}
	return eta, nil
}

// EdgeEtas returns the per-hop transmissivities along path.
func (g *Graph) EdgeEtas(path []string) ([]float64, error) {
	return g.EdgeEtasInto(nil, path)
}

// EdgeEtasInto appends the per-hop transmissivities along path to dst
// (usually dst[:0] of a reused buffer) and returns it — the allocation-free
// variant of EdgeEtas for per-request hot paths.
//
//qntn:hotpath once per protocol path attempt of every served request
func (g *Graph) EdgeEtasInto(dst []float64, path []string) ([]float64, error) {
	if len(path) < 2 {
		return dst, nil
	}
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.Eta(path[i], path[i+1])
		if !ok {
			return dst, fmt.Errorf("routing: path uses missing edge %s-%s", path[i], path[i+1])
		}
		//qntn:coldpath amortized growth: dst is the caller's reused buffer
		dst = append(dst, e)
	}
	return dst, nil
}
