package routing

import (
	"reflect"
	"testing"
)

// buildTriangle returns a graph with a fixed three-node topology.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, e := range []struct {
		a, b string
		eta  float64
	}{{"a", "b", 0.9}, {"b", "c", 0.8}, {"a", "c", 0.7}} {
		if err := g.AddEdge(e.a, e.b, e.eta); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestResetEdgesLeavesNoStaleEdges(t *testing.T) {
	g := buildTriangle(t)
	g.ResetEdges()
	if n := g.NumEdges(); n != 0 {
		t.Fatalf("NumEdges after ResetEdges = %d, want 0", n)
	}
	if n := g.NumNodes(); n != 3 {
		t.Fatalf("NumNodes after ResetEdges = %d, want 3", n)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if _, ok := g.Eta(pair[0], pair[1]); ok {
			t.Errorf("edge %s-%s survived ResetEdges", pair[0], pair[1])
		}
	}
	if nbrs := g.Neighbors("a"); len(nbrs) != 0 {
		t.Errorf("Neighbors(a) after ResetEdges = %v, want empty", nbrs)
	}
	// Only the newly added edge may exist afterwards.
	if err := g.AddEdge("b", "c", 0.5); err != nil {
		t.Fatal(err)
	}
	if eta, ok := g.Eta("b", "c"); !ok || eta != 0.5 {
		t.Fatalf("Eta(b,c) = %v,%v after re-add, want 0.5,true", eta, ok)
	}
	if _, ok := g.Eta("a", "b"); ok {
		t.Error("stale edge a-b leaked through ResetEdges + re-add")
	}
	if n := g.NumEdges(); n != 1 {
		t.Fatalf("NumEdges = %d, want 1", n)
	}
}

func TestResetKeepsIndexAssignmentStable(t *testing.T) {
	g := buildTriangle(t)
	want := make(map[string]int)
	for _, id := range g.Nodes() {
		i, ok := g.IndexOf(id)
		if !ok {
			t.Fatalf("IndexOf(%q) missing", id)
		}
		want[id] = i
	}
	g.Reset()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("Reset left %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
	// Re-adding the same IDs in the same order must yield the same dense
	// indices — the contract SnapshotInto's index-based edge adds rely on.
	for _, id := range []string{"a", "b", "c"} {
		if got := g.AddNode(id); got != want[id] {
			t.Fatalf("AddNode(%q) after Reset = %d, want %d", id, got, want[id])
		}
	}
}

func TestReusedGraphDeepEqualsFreshGraph(t *testing.T) {
	// A reused graph that went through a different history must end up
	// DeepEqual to a freshly built one with the same contents.
	reused := buildTriangle(t)
	if err := reused.AddEdge("c", "d", 0.6); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	for _, id := range []string{"a", "b", "c", "d"} {
		reused.AddNode(id)
	}
	reused.ResetEdges()
	if err := reused.AddEdgeByIndex(0, 3, 0.25); err != nil {
		t.Fatal(err)
	}

	fresh := NewGraph()
	for _, id := range []string{"a", "b", "c", "d"} {
		fresh.AddNode(id)
	}
	fresh.ResetEdges()
	if err := fresh.AddEdge("a", "d", 0.25); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, fresh) {
		t.Fatalf("reused graph != fresh graph:\nreused: %+v\nfresh:  %+v", reused, fresh)
	}
}

func TestAddNodeAfterEdgesRestrides(t *testing.T) {
	g := buildTriangle(t)
	// Adding a node after edges exist must preserve them across the
	// matrix re-stride triggered by the next edge operation.
	g.AddNode("d")
	if err := g.AddEdge("d", "a", 0.95); err != nil {
		t.Fatal(err)
	}
	want := map[[2]string]float64{
		{"a", "b"}: 0.9, {"b", "c"}: 0.8, {"a", "c"}: 0.7, {"a", "d"}: 0.95,
	}
	if n := g.NumEdges(); n != len(want) {
		t.Fatalf("NumEdges = %d, want %d", n, len(want))
	}
	for pair, eta := range want {
		if got, ok := g.Eta(pair[0], pair[1]); !ok || got != eta {
			t.Errorf("Eta(%s,%s) = %v,%v, want %v,true", pair[0], pair[1], got, ok, eta)
		}
	}
}

func TestAddEdgeByIndexValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b")
	cases := []struct {
		name    string
		i, j    int
		eta     float64
		wantErr bool
	}{
		{"valid", 0, 1, 0.5, false},
		{"self-loop", 0, 0, 0.5, true},
		{"out of range", 0, 2, 0.5, true},
		{"negative index", -1, 1, 0.5, true},
		{"eta above one", 0, 1, 1.5, true},
		{"eta negative", 0, 1, -0.5, true},
	}
	for _, tc := range cases {
		err := g.AddEdgeByIndex(tc.i, tc.j, tc.eta)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: AddEdgeByIndex(%d,%d,%v) error = %v, wantErr %v",
				tc.name, tc.i, tc.j, tc.eta, err, tc.wantErr)
		}
	}
}

func TestRemoveEdgeKeepsCountConsistent(t *testing.T) {
	g := buildTriangle(t)
	g.RemoveEdge("a", "b")
	if n := g.NumEdges(); n != 2 {
		t.Fatalf("NumEdges after remove = %d, want 2", n)
	}
	g.RemoveEdge("a", "b") // double remove is a no-op
	if n := g.NumEdges(); n != 2 {
		t.Fatalf("NumEdges after double remove = %d, want 2", n)
	}
	if _, ok := g.Eta("a", "b"); ok {
		t.Error("removed edge still present")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if !reflect.DeepEqual(g.Nodes(), c.Nodes()) {
		t.Fatalf("clone nodes %v != %v", c.Nodes(), g.Nodes())
	}
	c.RemoveEdge("a", "b")
	if _, ok := g.Eta("a", "b"); !ok {
		t.Error("removing a clone edge mutated the original")
	}
	if _, ok := c.Eta("a", "b"); ok {
		t.Error("clone edge survived removal")
	}
}

func TestScratchRunMatchesBellmanFord(t *testing.T) {
	g := buildTriangle(t)
	if err := g.AddEdge("c", "d", 0.75); err != nil {
		t.Fatal(err)
	}
	g.AddNode("island")

	var scratch BellmanFordScratch
	// Converge a different graph first so the scratch holds stale state,
	// then the real one: results must match a fresh BellmanFord exactly.
	other := NewGraph()
	if err := other.AddEdge("x", "y", 0.5); err != nil {
		t.Fatal(err)
	}
	scratch.Run(other, 0)
	got := scratch.Run(g, 0)
	want := BellmanFord(g, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scratch.Run != BellmanFord:\ngot:  %+v\nwant: %+v", got, want)
	}
	path, err := got.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	wantPath, err := want.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, wantPath) {
		t.Fatalf("Path(a,d) = %v, want %v", path, wantPath)
	}
	if got.Reachable("a", "island") {
		t.Error("island reachable from a")
	}
}
