package routing

import "fmt"

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, id := range g.ids {
		c.AddNode(id)
	}
	if g.edges > 0 {
		c.ensureMat()
		g.EachEdge(func(i, j int, eta float64) {
			c.setEdge(i, j, eta)
		})
	}
	return c
}

// EdgeDisjointPaths returns up to k pairwise edge-disjoint paths from src
// to dst, greedily extracted in decreasing end-to-end transmissivity: each
// round runs Dijkstra on −log η, records the best path, and removes its
// edges before the next round. Fewer than k paths are returned when the
// graph runs out of disjoint routes; zero paths when dst is unreachable.
//
// Edge-disjoint multipath is the standard redundancy primitive for
// entanglement distribution: attempts on disjoint paths fail
// independently, so the combined success probability is
// 1 − Π(1 − η_path).
func EdgeDisjointPaths(g *Graph, src, dst string, k int) ([][]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("routing: need a positive path budget, got %d", k)
	}
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil, fmt.Errorf("routing: unknown endpoint %q or %q", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("routing: src equals dst (%q)", src)
	}
	work := g.Clone()
	var paths [][]string
	for len(paths) < k {
		path, _, err := BestTransmissivityPath(work, src, dst)
		if err != nil {
			break // unreachable in the residual graph: done
		}
		paths = append(paths, path)
		for i := 0; i+1 < len(path); i++ {
			work.RemoveEdge(path[i], path[i+1])
		}
	}
	return paths, nil
}

// MultipathSuccessProbability returns the probability that at least one of
// the given paths delivers a pair, treating each path's end-to-end
// transmissivity as its independent success probability (valid for
// edge-disjoint paths).
func (g *Graph) MultipathSuccessProbability(paths [][]string) (float64, error) {
	failAll := 1.0
	for _, path := range paths {
		eta, err := g.PathEta(path)
		if err != nil {
			return 0, err
		}
		failAll *= 1 - eta
	}
	return 1 - failAll, nil
}
