package routing

import (
	"fmt"
	"math"
)

// DijkstraScratch is a reusable, allocation-free (after warm-up) replica of
// Dijkstra over the dense adjacency matrix. It must stay BIT-IDENTICAL to
// the map-packed baseline: same relaxation order (ascending dense-row scan,
// matching neighborIndices), same strict-improvement rule, and a binary
// heap transliterating container/heap's exact sift arithmetic — so that
// predecessor choices agree even on cost ties, where which equal-cost
// parent wins is decided purely by heap pop order. The differential suite
// in scratchpaths_test.go pins this against routing.Dijkstra on randomized
// tie-heavy graphs.
type DijkstraScratch struct {
	dist []float64
	prev []int
	done []bool
	heap []heapItem
}

// run computes single-source shortest paths from dense index src. Nodes
// with blocked[v] true are unusable (nil means none), and when skipA/skipB
// are ≥ 0 the single direct edge between them is ignored in both
// directions — the scratch equivalent of deleting vertices (rsp. one edge)
// from a cloned graph. cost must be nonnegative, as the baseline requires.
//
//qntn:hotpath once per redundant protocol route of every served request
func (s *DijkstraScratch) run(g *Graph, src int, cost CostFunc, blocked []bool, skipA, skipB int) {
	n := g.NumNodes()
	if cap(s.dist) < n {
		//qntn:coldpath warm-up sizing
		s.dist = make([]float64, n)
		//qntn:coldpath warm-up sizing
		s.prev = make([]int, n)
		//qntn:coldpath warm-up sizing
		s.done = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.prev = s.prev[:n]
	s.done = s.done[:n]
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		s.dist[i] = inf
		s.prev[i] = -1
		s.done[i] = false
	}
	s.dist[src] = 0
	s.heap = s.heap[:0]
	s.push(heapItem{node: src, dist: 0})
	for len(s.heap) > 0 {
		u := s.pop().node
		if s.done[u] {
			continue
		}
		s.done[u] = true
		if u >= g.matN {
			continue
		}
		row := g.mat[u*g.matN : (u+1)*g.matN]
		du := s.dist[u]
		for v, eta := range row {
			if eta < 0 {
				continue
			}
			if blocked != nil && blocked[v] {
				continue
			}
			if (u == skipA && v == skipB) || (u == skipB && v == skipA) {
				continue
			}
			if c := du + cost(eta); c < s.dist[v] {
				s.dist[v] = c
				s.prev[v] = u
				s.push(heapItem{node: v, dist: c})
			}
		}
	}
}

// push appends and sifts up with container/heap's exact arithmetic
// (heap.Push: append, then up(n−1)).
//
//qntn:hotpath heap insertion inside the scratch Dijkstra relaxation loop
func (s *DijkstraScratch) push(it heapItem) {
	//qntn:coldpath amortized growth: the heap buffer is reused across runs
	s.heap = append(s.heap, it)
	j := len(s.heap) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(s.heap[j].dist < s.heap[i].dist) {
			break
		}
		s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
		j = i
	}
}

// pop removes the minimum with container/heap's exact arithmetic
// (heap.Pop: swap(0, n−1), down(0, n−1), then pop the tail).
func (s *DijkstraScratch) pop() heapItem {
	n := len(s.heap) - 1
	s.heap[0], s.heap[n] = s.heap[n], s.heap[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.heap[j2].dist < s.heap[j1].dist {
			j = j2
		}
		if !(s.heap[j].dist < s.heap[i].dist) {
			break
		}
		s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
		i = j
	}
	it := s.heap[n]
	s.heap = s.heap[:n]
	return it
}

// DisjointScratch extracts, without steady-state allocation, the route set
// the protocol layer purifies over: the primary path followed by up to k−1
// further paths, each internally vertex-disjoint from all earlier ones
// (endpoints shared), chosen greedily by best end-to-end transmissivity
// (Dijkstra on −log η) over the remaining graph. Semantically identical to
// clone-and-delete extraction with Dijkstra + PathTo — the scalar
// reference in qntn/oracletest pins this: blocking interior vertices here
// replaces deleting their incident edges there, and a consumed direct
// src–dst edge is skipped rather than removed.
type DisjointScratch struct {
	dij          DijkstraScratch
	cost         CostFunc
	blocked      []bool
	arena        []string
	paths        [][]string
	src, dst     int
	skipA, skipB int
}

// Extract returns the disjoint route set for the given primary path: the
// primary itself first, then up to k−1 disjoint alternatives in greedy
// order. The returned slices are valid only until the next Extract call on
// the same scratch. k ≤ 1 returns just the primary.
func (s *DisjointScratch) Extract(g *Graph, primary []string, k int) ([][]string, error) {
	if len(primary) < 2 {
		return nil, fmt.Errorf("routing: disjoint extraction needs a path, got %d nodes", len(primary))
	}
	if s.cost == nil {
		s.cost = NegLogEtaCost(0)
	}
	n := g.NumNodes()
	if cap(s.blocked) < n {
		//qntn:coldpath warm-up sizing
		s.blocked = make([]bool, n)
	}
	s.blocked = s.blocked[:n]
	for i := range s.blocked {
		s.blocked[i] = false
	}
	var ok bool
	if s.src, ok = g.IndexOf(primary[0]); !ok {
		return nil, fmt.Errorf("routing: unknown path node %q", primary[0])
	}
	if s.dst, ok = g.IndexOf(primary[len(primary)-1]); !ok {
		return nil, fmt.Errorf("routing: unknown path node %q", primary[len(primary)-1])
	}
	s.skipA, s.skipB = -1, -1
	s.paths = s.paths[:0]
	s.arena = s.arena[:0]
	s.paths = append(s.paths, primary)
	if err := s.block(g, primary); err != nil {
		return nil, err
	}
	for len(s.paths) < k {
		s.dij.run(g, s.src, s.cost, s.blocked, s.skipA, s.skipB)
		if math.IsInf(s.dij.dist[s.dst], 1) {
			break
		}
		start := len(s.arena)
		for cur := s.dst; ; cur = s.dij.prev[cur] {
			s.arena = append(s.arena, g.ids[cur])
			if cur == s.src {
				break
			}
		}
		seg := s.arena[start:len(s.arena):len(s.arena)]
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
		s.paths = append(s.paths, seg)
		if err := s.block(g, seg); err != nil {
			return nil, err
		}
	}
	return s.paths, nil
}

// block marks a consumed path's interior vertices unusable. A single-edge
// path has no interior, so its direct src–dst edge is retired instead —
// otherwise the identical path would be re-extracted forever.
func (s *DisjointScratch) block(g *Graph, path []string) error {
	for i := 1; i+1 < len(path); i++ {
		idx, ok := g.IndexOf(path[i])
		if !ok {
			return fmt.Errorf("routing: unknown path node %q", path[i])
		}
		s.blocked[idx] = true
	}
	if len(path) == 2 {
		s.skipA, s.skipB = s.src, s.dst
	}
	return nil
}
