package routing

import (
	"fmt"
	"math"
)

// DefaultEpsilon is the small positive ε of the paper's 1/(η+ε) cost
// metric, preventing division by zero on η = 0 edges.
const DefaultEpsilon = 1e-6

// CostFromEta converts a transmissivity into the paper's additive routing
// cost 1/(η+ε). Larger transmissivity means smaller cost.
func CostFromEta(eta, epsilon float64) float64 {
	return 1 / (eta + epsilon)
}

// Tables holds the converged routing table of every node: for each (node,
// destination) pair the minimal total cost and the Algorithm 1 Via waypoint
// needed to reconstruct the path. Storage is dense (one cost and one
// waypoint index per pair), matching the dense Graph it is computed from.
type Tables struct {
	Epsilon float64

	ids   []string
	index map[string]int
	n     int
	// cost[i*n+j] is node i's converged cost to reach j; via holds the
	// Algorithm 1 waypoint (-1 none, j itself for direct edges).
	cost []float64
	via  []int32
}

// BellmanFordScratch is the reusable workspace of the Algorithm 1 solver.
// Run converges the tables for a graph, reusing the buffers of previous
// runs; the returned Tables alias the scratch and are valid only until the
// next Run on the same scratch. The zero value is ready to use. A scratch
// must not be shared between goroutines.
type BellmanFordScratch struct {
	t Tables
	// Flattened neighbor lists of the current graph: node u's neighbors
	// are nbrs[off[u]:off[u+1]], ascending.
	nbrs []int32
	off  []int32
	// rounds is the number of relaxation rounds the last Run executed
	// before converging (early exit included).
	rounds int
}

// Rounds reports how many relaxation rounds the last Run executed. Exposed
// for telemetry: convergence speed is a direct measure of topology diameter
// and routing cost per snapshot.
func (s *BellmanFordScratch) Rounds() int { return s.rounds }

// BellmanFord runs the paper's Algorithm 1 on the graph: every node
// initializes a table with cost 0 to itself, 1/(η+ε) to adjacent nodes and
// +Inf elsewhere, then N−1 synchronous rounds of relaxation over all graph
// edges update each table. Callers converging tables for many topology
// snapshots should allocate a BellmanFordScratch and call Run instead.
func BellmanFord(g *Graph, epsilon float64) *Tables {
	return new(BellmanFordScratch).Run(g, epsilon)
}

// Run converges the Algorithm 1 tables for g, reusing the scratch buffers.
// The result is valid until the next Run call on the same scratch.
func (s *BellmanFordScratch) Run(g *Graph, epsilon float64) *Tables {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	t := &s.t
	t.Epsilon = epsilon
	s.rounds = 0
	n := g.NumNodes()
	s.setIDs(g.ids)
	if n == 0 {
		return t
	}
	if cap(t.cost) >= n*n {
		t.cost = t.cost[:n*n]
		t.via = t.via[:n*n]
	} else {
		t.cost = make([]float64, n*n)
		t.via = make([]int32, n*n)
	}

	// Flatten the (ascending) neighbor lists once for deterministic,
	// allocation-free iteration during the update rounds.
	s.nbrs = s.nbrs[:0]
	if cap(s.off) >= n+1 {
		s.off = s.off[:1]
	} else {
		s.off = make([]int32, 1, n+1)
	}
	s.off[0] = 0
	for u := 0; u < n; u++ {
		if u < g.matN {
			row := g.mat[u*g.matN : (u+1)*g.matN]
			for v, eta := range row {
				if eta >= 0 {
					s.nbrs = append(s.nbrs, int32(v))
				}
			}
		}
		s.off = append(s.off, int32(len(s.nbrs)))
	}

	s.initialize(g, epsilon)

	// N−1 rounds of UPDATE (Algorithm 1), with early exit once a round
	// improves nothing.
	for round := 0; round < n-1; round++ {
		s.rounds = round + 1
		if !s.relax() {
			break
		}
	}
	return t
}

// initialize seeds the tables per Algorithm 1's INITIALIZE: cost 0 to
// self, 1/(η+ε) to adjacent nodes, +Inf elsewhere. Buffers are sized by
// Run before the call.
//
//qntn:hotpath runs on every converged snapshot; buffers are pre-sized
func (s *BellmanFordScratch) initialize(g *Graph, epsilon float64) {
	t := &s.t
	n := t.n
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		row := t.cost[i*n : (i+1)*n]
		vrow := t.via[i*n : (i+1)*n]
		var arow []float64
		if i < g.matN {
			arow = g.mat[i*g.matN : (i+1)*g.matN]
		}
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				row[j] = 0
				vrow[j] = -1
			case j < len(arow) && arow[j] >= 0:
				row[j] = CostFromEta(arow[j], epsilon)
				vrow[j] = int32(j)
			default:
				row[j] = inf
				vrow[j] = -1
			}
		}
	}
}

// relax runs one synchronous UPDATE round of Algorithm 1 — for every node
// and every edge (u, v), try reaching u through v using v's table — and
// reports whether any table entry improved.
//
//qntn:hotpath the O(N·E) inner loop of every routing convergence
func (s *BellmanFordScratch) relax() bool {
	t := &s.t
	n := t.n
	changed := false
	for i := 0; i < n; i++ {
		row := t.cost[i*n : (i+1)*n]
		vrow := t.via[i*n : (i+1)*n]
		for u := 0; u < n; u++ {
			if u == i {
				continue
			}
			for _, v := range s.nbrs[s.off[u]:s.off[u+1]] {
				if int(v) == i {
					// Reaching u directly as our neighbor was already
					// seeded in INITIALIZE.
					continue
				}
				cand := row[v] + t.cost[int(v)*n+u]
				if cand < row[u] {
					row[u] = cand
					vrow[u] = v
					changed = true
				}
			}
		}
	}
	return changed
}

// setIDs refreshes the scratch tables' node labels from the graph, reusing
// the previous labels and index map when they already match (the common
// case when one scratch serves consecutive snapshots of a fixed node set).
func (s *BellmanFordScratch) setIDs(ids []string) {
	t := &s.t
	t.n = len(ids)
	same := len(t.ids) == len(ids)
	if same {
		for i, id := range ids {
			if t.ids[i] != id {
				same = false
				break
			}
		}
	}
	if same {
		return
	}
	t.ids = append(t.ids[:0], ids...)
	if t.index == nil {
		t.index = make(map[string]int, len(ids))
	} else {
		clear(t.index)
	}
	for i, id := range t.ids {
		t.index[id] = i
	}
}

// Cost returns the converged cost from src to dst.
func (t *Tables) Cost(src, dst string) (float64, error) {
	si, ok := t.index[src]
	if !ok {
		return 0, fmt.Errorf("routing: unknown source %q", src)
	}
	di, ok := t.index[dst]
	if !ok {
		return 0, fmt.Errorf("routing: unknown destination %q", dst)
	}
	return t.cost[si*t.n+di], nil
}

// Path reconstructs the minimum-cost path from src to dst. Algorithm 1
// stores, for each destination, a Via waypoint: either the destination
// itself (direct edge, as seeded by INITIALIZE) or an intermediate node v
// such that cost(src→dst) = cost(src→v) + cost(v→dst) with both legs
// resolved by the converged tables. Reconstruction therefore expands
// waypoints recursively. Returns an error if dst is unreachable.
func (t *Tables) Path(src, dst string) ([]string, error) {
	si, ok := t.index[src]
	if !ok {
		return nil, fmt.Errorf("routing: unknown source %q", src)
	}
	di, ok := t.index[dst]
	if !ok {
		return nil, fmt.Errorf("routing: unknown destination %q", dst)
	}
	budget := 4 * t.n // recursion guard
	path, err := t.expand(si, di, &budget)
	if err != nil {
		return nil, err
	}
	return path, nil
}

func (t *Tables) expand(src, dst int, budget *int) ([]string, error) {
	if *budget <= 0 {
		return nil, fmt.Errorf("routing: path expansion exceeded budget (cycle in tables?)")
	}
	*budget--
	if src == dst {
		return []string{t.ids[src]}, nil
	}
	if math.IsInf(t.cost[src*t.n+dst], 1) {
		return nil, fmt.Errorf("routing: %s unreachable from %s", t.ids[dst], t.ids[src])
	}
	via := t.via[src*t.n+dst]
	if via < 0 {
		return nil, fmt.Errorf("routing: missing waypoint for %s -> %s", t.ids[src], t.ids[dst])
	}
	if int(via) == dst {
		return []string{t.ids[src], t.ids[dst]}, nil
	}
	first, err := t.expand(src, int(via), budget)
	if err != nil {
		return nil, err
	}
	second, err := t.expand(int(via), dst, budget)
	if err != nil {
		return nil, err
	}
	return append(first, second[1:]...), nil
}

// Reachable reports whether dst has finite cost from src.
func (t *Tables) Reachable(src, dst string) bool {
	c, err := t.Cost(src, dst)
	return err == nil && !math.IsInf(c, 1)
}
