package routing

import (
	"fmt"
	"math"
)

// DefaultEpsilon is the small positive ε of the paper's 1/(η+ε) cost
// metric, preventing division by zero on η = 0 edges.
const DefaultEpsilon = 1e-6

// CostFromEta converts a transmissivity into the paper's additive routing
// cost 1/(η+ε). Larger transmissivity means smaller cost.
func CostFromEta(eta, epsilon float64) float64 {
	return 1 / (eta + epsilon)
}

// Entry is one routing-table row: the accumulated cost to a destination and
// the Via node — the last relay before the destination, exactly as stored
// by Algorithm 1 (a predecessor pointer).
type Entry struct {
	Cost float64
	Via  string // "" for self or unreachable
}

// Table maps destination ID to routing entry for a single node.
type Table map[string]Entry

// Tables holds the converged routing table of every node.
type Tables struct {
	Epsilon float64
	ByNode  map[string]Table
}

// BellmanFord runs the paper's Algorithm 1 on the graph: every node
// initializes a table with cost 0 to itself, 1/(η+ε) to adjacent nodes and
// +Inf elsewhere, then N−1 synchronous rounds of relaxation over all graph
// edges update each table. The returned tables contain, for every (node,
// destination) pair, the minimal total cost and the predecessor needed to
// reconstruct the path.
func BellmanFord(g *Graph, epsilon float64) *Tables {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	n := g.NumNodes()
	tables := &Tables{Epsilon: epsilon, ByNode: make(map[string]Table, n)}
	if n == 0 {
		return tables
	}

	// Dense working state: cost[i*n+j] is node i's cost to reach j, via
	// holds the Algorithm 1 waypoint (-1 none, j itself for direct edges).
	cost := make([]float64, n*n)
	via := make([]int32, n*n)
	inf := math.Inf(1)

	// Precompute sorted neighbor lists once for deterministic iteration.
	nbrs := make([][]int, n)
	for u := 0; u < n; u++ {
		nbrs[u] = g.neighborIndices(u)
	}

	// INITIALIZE (Algorithm 1).
	for i := 0; i < n; i++ {
		row := cost[i*n : (i+1)*n]
		vrow := via[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				row[j] = 0
				vrow[j] = -1
			default:
				if eta, ok := g.adj[i][j]; ok {
					row[j] = CostFromEta(eta, epsilon)
					vrow[j] = int32(j)
				} else {
					row[j] = inf
					vrow[j] = -1
				}
			}
		}
	}

	// N−1 rounds of UPDATE (Algorithm 1): for every node and every edge
	// (u, v), try reaching u through v using v's table.
	for round := 0; round < n-1; round++ {
		changed := false
		for i := 0; i < n; i++ {
			row := cost[i*n : (i+1)*n]
			vrow := via[i*n : (i+1)*n]
			for u := 0; u < n; u++ {
				if u == i {
					continue
				}
				for _, v := range nbrs[u] {
					if v == i {
						// Reaching u directly as our neighbor was already
						// seeded in INITIALIZE.
						continue
					}
					cand := row[v] + cost[v*n+u]
					if cand < row[u] {
						row[u] = cand
						vrow[u] = int32(v)
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Export to the string-keyed table API.
	for i, id := range g.ids {
		t := make(Table, n)
		for j, dest := range g.ids {
			e := Entry{Cost: cost[i*n+j]}
			if v := via[i*n+j]; v >= 0 {
				e.Via = g.ids[v]
			}
			t[dest] = e
		}
		tables.ByNode[id] = t
	}
	return tables
}

// Cost returns the converged cost from src to dst.
func (t *Tables) Cost(src, dst string) (float64, error) {
	st, ok := t.ByNode[src]
	if !ok {
		return 0, fmt.Errorf("routing: unknown source %q", src)
	}
	e, ok := st[dst]
	if !ok {
		return 0, fmt.Errorf("routing: unknown destination %q", dst)
	}
	return e.Cost, nil
}

// Path reconstructs the minimum-cost path from src to dst. Algorithm 1
// stores, for each destination, a Via waypoint: either the destination
// itself (direct edge, as seeded by INITIALIZE) or an intermediate node v
// such that cost(src→dst) = cost(src→v) + cost(v→dst) with both legs
// resolved by the converged tables. Reconstruction therefore expands
// waypoints recursively. Returns an error if dst is unreachable.
func (t *Tables) Path(src, dst string) ([]string, error) {
	if _, ok := t.ByNode[src]; !ok {
		return nil, fmt.Errorf("routing: unknown source %q", src)
	}
	if _, ok := t.ByNode[dst]; !ok {
		return nil, fmt.Errorf("routing: unknown destination %q", dst)
	}
	budget := 4 * len(t.ByNode) // recursion guard
	path, err := t.expand(src, dst, &budget)
	if err != nil {
		return nil, err
	}
	return path, nil
}

func (t *Tables) expand(src, dst string, budget *int) ([]string, error) {
	if *budget <= 0 {
		return nil, fmt.Errorf("routing: path expansion exceeded budget (cycle in tables?)")
	}
	*budget--
	if src == dst {
		return []string{src}, nil
	}
	e := t.ByNode[src][dst]
	if math.IsInf(e.Cost, 1) {
		return nil, fmt.Errorf("routing: %s unreachable from %s", dst, src)
	}
	if e.Via == "" {
		return nil, fmt.Errorf("routing: missing waypoint for %s -> %s", src, dst)
	}
	if e.Via == dst {
		return []string{src, dst}, nil
	}
	first, err := t.expand(src, e.Via, budget)
	if err != nil {
		return nil, err
	}
	second, err := t.expand(e.Via, dst, budget)
	if err != nil {
		return nil, err
	}
	return append(first, second[1:]...), nil
}

// Reachable reports whether dst has finite cost from src.
func (t *Tables) Reachable(src, dst string) bool {
	c, err := t.Cost(src, dst)
	return err == nil && !math.IsInf(c, 1)
}
