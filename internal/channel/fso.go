package channel

import (
	"fmt"
	"math"

	"qntn/internal/atmosphere"
)

// FSOConfig holds the hardware and environment parameters of a free-space
// optical terminal pair, following the η = η_turb · η_atm · η_eff
// decomposition of the paper's Eq. (2) (after Ghalaii & Pirandola).
type FSOConfig struct {
	// WavelengthM is the optical wavelength (meters).
	WavelengthM float64
	// TxApertureRadiusM is the transmitter aperture radius.
	TxApertureRadiusM float64
	// TxWaistM is the outgoing Gaussian beam waist radius. Zero selects
	// TxApertureRadiusM (collimated beam filling the aperture). Choosing
	// a waist smaller than the aperture trades near-field collimation for
	// far-field divergence; OptimalWaist gives the spot-minimizing value
	// for a design range.
	TxWaistM float64
	// RxApertureRadiusM is the receiver aperture radius.
	RxApertureRadiusM float64
	// ReceiverEfficiency is the lumped detector/optics efficiency η_eff.
	ReceiverEfficiency float64
	// Extinction is the atmospheric absorption/scattering model (η_atm).
	Extinction atmosphere.Extinction
	// Turbulence, when non-nil, enables turbulence-induced beam
	// broadening from the given Cn² profile. The paper's evaluation
	// assumes ideal conditions (nil).
	Turbulence *atmosphere.HufnagelValley
	// PointingJitterRad adds an rms pointing-error half-angle folded into
	// the effective beam divergence. Zero for the paper's ideal setup.
	PointingJitterRad float64
}

// Validate reports whether the configuration is physical.
func (c FSOConfig) Validate() error {
	switch {
	case c.WavelengthM <= 0:
		return fmt.Errorf("channel: non-positive wavelength %g", c.WavelengthM)
	case c.TxApertureRadiusM <= 0:
		return fmt.Errorf("channel: non-positive transmit aperture %g", c.TxApertureRadiusM)
	case c.RxApertureRadiusM <= 0:
		return fmt.Errorf("channel: non-positive receive aperture %g", c.RxApertureRadiusM)
	case c.ReceiverEfficiency <= 0 || c.ReceiverEfficiency > 1:
		return fmt.Errorf("channel: receiver efficiency %g outside (0,1]", c.ReceiverEfficiency)
	case c.PointingJitterRad < 0:
		return fmt.Errorf("channel: negative pointing jitter %g", c.PointingJitterRad)
	case c.TxWaistM < 0 || c.TxWaistM > c.TxApertureRadiusM:
		return fmt.Errorf("channel: beam waist %g outside (0, aperture radius %g]", c.TxWaistM, c.TxApertureRadiusM)
	}
	return c.Extinction.Validate()
}

// waist returns the effective transmit beam waist.
func (c FSOConfig) waist() float64 {
	if c.TxWaistM > 0 {
		return c.TxWaistM
	}
	return c.TxApertureRadiusM
}

// OptimalWaist returns the beam waist that minimizes the spot size at the
// given design range for the given wavelength: w0 = sqrt(λ L / π). A
// transmitter designed for its typical link distance uses this value
// (capped by its aperture radius by the caller).
func OptimalWaist(wavelengthM, designRangeM float64) float64 {
	if math.IsNaN(wavelengthM) || math.IsNaN(designRangeM) ||
		wavelengthM <= 0 || designRangeM <= 0 {
		return 0
	}
	return math.Sqrt(wavelengthM * designRangeM / math.Pi)
}

// MaxUsableRangeM2 returns a squared slant range R² such that any geometry
// with RangeM² > R² is guaranteed to evaluate below the given
// transmissivity threshold. It inverts the diffraction factor alone:
//
//	Total = Diffraction · Atmospheric · Receiver ≤ Diffraction
//	Diffraction = 1 − exp(−2a²/weff²),  weff² ≥ wd² = w0²(1 + (L/zR)²)
//
// so Diffraction ≥ threshold requires weff² ≤ wmax² = 2a²/(−ln(1−threshold))
// and therefore L² ≤ zR²(wmax²/w0² − 1). Turbulence and pointing jitter only
// add to weff², and Atmospheric and Receiver are ≤ 1, so the bound holds for
// every configuration. The returned value carries a small relative margin so
// that callers comparing an independently computed squared distance never
// reject a geometry the full evaluation would accept; it is a prefilter, not
// a decision — geometries within the bound must still be evaluated.
// Thresholds ≤ 0 (nothing can be rejected on range) return +Inf.
func (c FSOConfig) MaxUsableRangeM2(threshold float64) float64 {
	if math.IsNaN(threshold) || threshold <= 0 {
		return math.Inf(1)
	}
	w0 := c.waist()
	a := c.RxApertureRadiusM
	if w0 <= 0 || a <= 0 || c.WavelengthM <= 0 {
		return math.Inf(1)
	}
	var wmax2 float64
	if threshold < 1 {
		wmax2 = 2 * a * a / (-math.Log(1-threshold))
	}
	r := wmax2/(w0*w0) - 1
	if r <= 0 {
		// Even at L = 0⁺ the beam is too wide (or threshold ≥ 1): only the
		// degenerate zero-range geometry can pass.
		return 0
	}
	zR := math.Pi * w0 * w0 / c.WavelengthM
	return zR * zR * r * (1 + 1e-9)
}

// FSOGeometry describes one link instance: slant range, elevation at the
// lower terminal, and the terminal altitudes (used to decide how much
// atmosphere the path crosses).
type FSOGeometry struct {
	RangeM       float64
	ElevationRad float64
	LoAltM       float64
	HiAltM       float64
}

// FSOBreakdown itemizes the factors of an FSO transmissivity computation.
type FSOBreakdown struct {
	// Diffraction is the aperture-capture factor including turbulence
	// broadening (η_turb in the paper's decomposition; equals the pure
	// diffraction capture when turbulence is disabled).
	Diffraction float64
	// Atmospheric is the Beer-Lambert slant-path transmission η_atm.
	Atmospheric float64
	// Receiver is η_eff.
	Receiver float64
	// BeamRadiusM is the effective beam radius at the receiver plane.
	BeamRadiusM float64
	// RytovVariance is the turbulence strength metric for the path (zero
	// when turbulence is disabled).
	RytovVariance float64
	// FriedParameterM is the path coherence length r0 (Inf when
	// turbulence is disabled).
	FriedParameterM float64
}

// Total returns the product of all factors.
func (b FSOBreakdown) Total() float64 {
	return b.Diffraction * b.Atmospheric * b.Receiver
}

// Transmissivity evaluates the channel transmissivity for the given
// geometry.
func (c FSOConfig) Transmissivity(g FSOGeometry) float64 {
	return c.Breakdown(g).Total()
}

// Breakdown evaluates the channel for the given geometry, returning each
// factor separately.
func (c FSOConfig) Breakdown(g FSOGeometry) FSOBreakdown {
	b := FSOBreakdown{Receiver: c.ReceiverEfficiency, FriedParameterM: math.Inf(1)}
	if g.RangeM <= 0 {
		b.Diffraction = 1
		b.Atmospheric = 1
		b.BeamRadiusM = c.waist()
		return b
	}

	// Diffraction-limited Gaussian beam radius at the receiver.
	w0 := c.waist()
	zR := math.Pi * w0 * w0 / c.WavelengthM
	wd2 := w0 * w0 * (1 + (g.RangeM/zR)*(g.RangeM/zR))

	// Turbulence broadening: add the turbulence-divergence term
	// (2 λ L / (π r0))² to the squared spot size, with r0 the Fried
	// parameter of the slant path.
	weff2 := wd2
	if c.Turbulence != nil {
		icn2 := c.Turbulence.IntegrateCn2(g.LoAltM, g.HiAltM, g.ElevationRad)
		if icn2 > 0 {
			k := 2 * math.Pi / c.WavelengthM
			r0 := math.Pow(0.423*k*k*icn2, -3.0/5.0)
			b.FriedParameterM = r0
			spread := 2 * c.WavelengthM * g.RangeM / (math.Pi * r0)
			weff2 += spread * spread
			b.RytovVariance = c.Turbulence.RytovVariance(g.LoAltM, g.HiAltM, g.ElevationRad, c.WavelengthM)
		}
	}
	// Pointing jitter widens the effective spot quadratically.
	if c.PointingJitterRad > 0 {
		j := c.PointingJitterRad * g.RangeM
		weff2 += 4 * j * j
	}

	b.BeamRadiusM = math.Sqrt(weff2)
	a := c.RxApertureRadiusM
	b.Diffraction = 1 - math.Exp(-2*a*a/weff2)
	b.Atmospheric = c.Extinction.Transmission(g.LoAltM, g.HiAltM, g.ElevationRad)
	return b
}

// LinkPolicy gates link establishment the way the paper's simulator does:
// a quantum link exists only when the line-of-sight elevation meets the
// minimum mask and the transmissivity meets the fidelity-derived threshold
// (0.7 in the paper, from Fig. 5).
type LinkPolicy struct {
	MinTransmissivity float64
	MinElevationRad   float64
}

// Usable reports whether a link with the given transmissivity and elevation
// is allowed to carry entanglement.
func (p LinkPolicy) Usable(eta, elevationRad float64) bool {
	return eta >= p.MinTransmissivity && elevationRad >= p.MinElevationRad
}
