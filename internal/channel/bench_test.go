package channel

import (
	"math"
	"testing"

	"qntn/internal/atmosphere"
)

func BenchmarkFSOBreakdownClear(b *testing.B) {
	c := testFSO()
	g := FSOGeometry{RangeM: 800e3, ElevationRad: math.Pi / 5, LoAltM: 0, HiAltM: 500e3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Breakdown(g)
	}
}

func BenchmarkFSOBreakdownTurbulent(b *testing.B) {
	c := testFSO()
	hv := atmosphere.HV57()
	c.Turbulence = &hv
	g := FSOGeometry{RangeM: 800e3, ElevationRad: math.Pi / 5, LoAltM: 0, HiAltM: 500e3}
	// Prime the vertical-integral cache, then measure the steady state the
	// simulator sees.
	_ = c.Breakdown(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Breakdown(g)
	}
}

func BenchmarkFiberTransmissivity(b *testing.B) {
	f := Fiber{AttenuationDBPerKm: PaperFiberAttenuationDBPerKm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Transmissivity(float64(i%3000) + 100)
	}
}
