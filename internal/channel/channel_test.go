package channel

import (
	"math"
	"testing"
	"testing/quick"

	"qntn/internal/atmosphere"
)

func TestFiberTransmissivity(t *testing.T) {
	f := Fiber{AttenuationDBPerKm: PaperFiberAttenuationDBPerKm}
	// 0.15 dB/km over 20 km = 3 dB, i.e. eta ≈ 0.501.
	got := f.Transmissivity(20e3)
	if math.Abs(got-0.5012) > 1e-3 {
		t.Fatalf("20 km transmissivity %g, want ≈0.501", got)
	}
	if f.Transmissivity(0) != 1 {
		t.Fatal("zero length should be lossless")
	}
	if f.Transmissivity(-5) != 1 {
		t.Fatal("negative length should clamp to lossless")
	}
}

func TestFiberMonotoneAndMultiplicative(t *testing.T) {
	f := Fiber{AttenuationDBPerKm: 0.15}
	quickCfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(a, b float64) bool {
		la, lb := math.Abs(a)*1e4, math.Abs(b)*1e4
		// Transmissivities multiply over concatenated spans.
		lhs := f.Transmissivity(la + lb)
		rhs := f.Transmissivity(la) * f.Transmissivity(lb)
		return math.Abs(lhs-rhs) < 1e-12
	}, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFiberLengthForTransmissivity(t *testing.T) {
	f := Fiber{AttenuationDBPerKm: 0.15}
	for _, eta := range []float64{0.9, 0.7, 0.5, 0.1} {
		l := f.LengthForTransmissivity(eta)
		if got := f.Transmissivity(l); math.Abs(got-eta) > 1e-9 {
			t.Errorf("inverse wrong at eta=%g: %g", eta, got)
		}
	}
	if !math.IsInf(f.LengthForTransmissivity(0), 1) {
		t.Error("eta=0 should need infinite fiber")
	}
	lossless := Fiber{AttenuationDBPerKm: 0}
	if !math.IsInf(lossless.LengthForTransmissivity(0.5), 1) {
		t.Error("lossless fiber never reaches eta<1")
	}
}

func TestFiberPaperThresholdDistance(t *testing.T) {
	// With 0.15 dB/km, the 0.7 transmissivity threshold corresponds to
	// about 10.3 km of fiber — comfortably longer than any intra-campus
	// link in Table I.
	f := Fiber{AttenuationDBPerKm: PaperFiberAttenuationDBPerKm}
	l := f.LengthForTransmissivity(0.7) / 1000
	if l < 9 || l < 0 || l > 12 {
		t.Fatalf("threshold distance %g km", l)
	}
}

func TestFiberValidate(t *testing.T) {
	if err := (Fiber{AttenuationDBPerKm: -1}).Validate(); err == nil {
		t.Error("negative attenuation accepted")
	}
	if err := (Fiber{AttenuationDBPerKm: math.NaN()}).Validate(); err == nil {
		t.Error("NaN attenuation accepted")
	}
}

func testFSO() FSOConfig {
	return FSOConfig{
		WavelengthM:        800e-9,
		TxApertureRadiusM:  0.6,
		RxApertureRadiusM:  0.6,
		ReceiverEfficiency: 0.995,
		Extinction:         atmosphere.Extinction{ZenithOpticalDepth: 0.015},
	}
}

func TestFSOValidate(t *testing.T) {
	good := testFSO()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []FSOConfig{
		{},
		{WavelengthM: 800e-9},
		{WavelengthM: 800e-9, TxApertureRadiusM: 0.6},
		{WavelengthM: 800e-9, TxApertureRadiusM: 0.6, RxApertureRadiusM: 0.6, ReceiverEfficiency: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	neg := good
	neg.PointingJitterRad = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestFSOBreakdownFactorsInRange(t *testing.T) {
	c := testFSO()
	err := quick.Check(func(rangeKM, elevDeg float64) bool {
		r := math.Mod(math.Abs(rangeKM), 2000)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return true
		}
		g := FSOGeometry{
			RangeM:       r*1e3 + 1,
			ElevationRad: math.Mod(math.Abs(elevDeg), 90) * math.Pi / 180,
			LoAltM:       0,
			HiAltM:       500e3,
		}
		if math.IsNaN(g.ElevationRad) {
			return true
		}
		b := c.Breakdown(g)
		in01 := func(x float64) bool { return x > 0 && x <= 1 }
		return in01(b.Diffraction) && in01(b.Atmospheric) && in01(b.Receiver) && in01(b.Total())
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFSOZeroRange(t *testing.T) {
	c := testFSO()
	b := c.Breakdown(FSOGeometry{})
	if b.Diffraction != 1 || b.Atmospheric != 1 {
		t.Fatalf("zero range should be lossless apart from η_eff, got %+v", b)
	}
	if math.Abs(b.Total()-c.ReceiverEfficiency) > 1e-12 {
		t.Fatalf("total %g, want η_eff", b.Total())
	}
}

func TestFSOMonotoneInRange(t *testing.T) {
	c := testFSO()
	prev := 2.0
	for _, rng := range []float64{100e3, 300e3, 500e3, 800e3, 1200e3, 2000e3} {
		eta := c.Transmissivity(FSOGeometry{RangeM: rng, ElevationRad: math.Pi / 2, LoAltM: 0, HiAltM: rng})
		if eta >= prev {
			t.Fatalf("transmissivity not decreasing at range %g", rng)
		}
		prev = eta
	}
}

func TestFSOMonotoneInElevation(t *testing.T) {
	// Fixed range, rising elevation → less atmosphere → higher eta.
	c := testFSO()
	prev := 0.0
	for deg := 5.0; deg <= 90; deg += 5 {
		eta := c.Transmissivity(FSOGeometry{RangeM: 600e3, ElevationRad: deg * math.Pi / 180, LoAltM: 0, HiAltM: 500e3})
		if eta <= prev {
			t.Fatalf("transmissivity not increasing at elevation %g°", deg)
		}
		prev = eta
	}
}

func TestFSOInterSatelliteLinkNoAtmosphere(t *testing.T) {
	c := testFSO()
	b := c.Breakdown(FSOGeometry{RangeM: 1000e3, ElevationRad: 0.05, LoAltM: 500e3, HiAltM: 500e3})
	if b.Atmospheric < 0.9999 {
		t.Fatalf("ISL should see no atmosphere, η_atm = %g", b.Atmospheric)
	}
}

func TestFSOTurbulenceDegrades(t *testing.T) {
	clear := testFSO()
	turb := testFSO()
	hv := atmosphere.HV57()
	turb.Turbulence = &hv
	g := FSOGeometry{RangeM: 700e3, ElevationRad: math.Pi / 6, LoAltM: 0, HiAltM: 500e3}
	etaClear := clear.Transmissivity(g)
	etaTurb := turb.Transmissivity(g)
	if etaTurb >= etaClear {
		t.Fatalf("turbulence should reduce transmissivity: %g vs %g", etaTurb, etaClear)
	}
	bt := turb.Breakdown(g)
	if bt.RytovVariance <= 0 || math.IsInf(bt.FriedParameterM, 1) {
		t.Fatalf("turbulence diagnostics missing: %+v", bt)
	}
}

func TestFSOPointingJitterDegrades(t *testing.T) {
	clear := testFSO()
	jitter := testFSO()
	jitter.PointingJitterRad = 2e-6
	g := FSOGeometry{RangeM: 700e3, ElevationRad: math.Pi / 4, LoAltM: 0, HiAltM: 500e3}
	if jitter.Transmissivity(g) >= clear.Transmissivity(g) {
		t.Fatal("pointing jitter should reduce transmissivity")
	}
}

func TestLinkPolicy(t *testing.T) {
	p := LinkPolicy{MinTransmissivity: 0.7, MinElevationRad: math.Pi / 9}
	if !p.Usable(0.8, math.Pi/4) {
		t.Error("good link rejected")
	}
	if p.Usable(0.69, math.Pi/4) {
		t.Error("low-eta link accepted")
	}
	if p.Usable(0.9, math.Pi/18) {
		t.Error("low-elevation link accepted")
	}
	if !p.Usable(0.7, math.Pi/9) {
		t.Error("boundary link should be accepted (inclusive)")
	}
}
