// Package channel implements the two optical channel models of the paper's
// Section III-A — fiber (Eq. 1) and free-space optical (Eq. 2) — plus the
// coupling of their transmissivities to the amplitude-damping channel of
// Eq. 3-4 and the transmissivity/elevation gating that decides whether a
// link exists.
package channel

import (
	"fmt"
	"math"
)

// PaperFiberAttenuationDBPerKm is the fiber attenuation coefficient used in
// the paper's evaluation (0.15 dB/km).
const PaperFiberAttenuationDBPerKm = 0.15

// Fiber models an optical fiber with exponential (Beer-Lambert) loss,
// the paper's Eq. (1). The attenuation coefficient is specified in dB/km as
// is conventional (and as the paper's cited 0.15 dB/km value implies), so
// transmissivity over length l is 10^(-alpha*l/10).
type Fiber struct {
	AttenuationDBPerKm float64
}

// Validate reports whether the configuration is physical.
func (f Fiber) Validate() error {
	if f.AttenuationDBPerKm < 0 || math.IsNaN(f.AttenuationDBPerKm) {
		return fmt.Errorf("channel: negative fiber attenuation %g dB/km", f.AttenuationDBPerKm)
	}
	return nil
}

// Transmissivity returns the channel transmissivity over lengthM meters.
func (f Fiber) Transmissivity(lengthM float64) float64 {
	if lengthM <= 0 {
		return 1
	}
	lossDB := f.AttenuationDBPerKm * lengthM / 1000
	return math.Pow(10, -lossDB/10)
}

// LengthForTransmissivity returns the fiber length (meters) at which the
// transmissivity drops to eta — the inverse of Transmissivity, useful for
// sizing network layouts in tests and examples.
func (f Fiber) LengthForTransmissivity(eta float64) float64 {
	if math.IsNaN(eta) || eta <= 0 || eta > 1 || f.AttenuationDBPerKm == 0 {
		return math.Inf(1)
	}
	lossDB := -10 * math.Log10(eta)
	return lossDB / f.AttenuationDBPerKm * 1000
}
