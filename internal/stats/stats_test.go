package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("summary %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("summary %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 {
		t.Fatal("p0 wrong")
	}
	if Percentile(xs, 100) != 5 {
		t.Fatal("p100 wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median %g", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

// TestSummarizeNaNPropagates is the regression test for silent NaN
// corruption: before Summarize checked, a NaN input left Min stuck at +Inf
// and Max at -Inf (NaN satisfies no ordering) while Mean/Std poisoned
// quietly. All statistics must now be explicitly NaN.
func TestSummarizeNaNPropagates(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	for name, v := range map[string]float64{"Mean": s.Mean, "Std": s.Std, "Min": s.Min, "Max": s.Max} {
		if !math.IsNaN(v) {
			t.Errorf("%s = %g, want NaN", name, v)
		}
	}
	if math.IsInf(s.Min, 1) || math.IsInf(s.Max, -1) {
		t.Error("Min/Max stuck at the infinity sentinels — the pre-fix corruption")
	}
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Error("Mean must propagate NaN")
	}
}

// TestPercentileNaNPropagates: sort.Float64s places NaN at an undefined
// position, so any rank could silently land on (or be displaced by) one —
// the result must be NaN, never an arbitrary finite value.
func TestPercentileNaNPropagates(t *testing.T) {
	if v := Percentile([]float64{1, math.NaN(), 3}, 50); !math.IsNaN(v) {
		t.Errorf("Percentile over NaN input = %g, want NaN", v)
	}
	if v := Percentile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(v) {
		t.Errorf("Percentile at NaN rank = %g, want NaN", v)
	}
	// +Inf is an ordered value, not corruption: it sorts last.
	if v := Percentile([]float64{1, math.Inf(1)}, 100); !math.IsInf(v, 1) {
		t.Errorf("p100 with +Inf = %g, want +Inf", v)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if s.String() == "" {
		t.Fatal("empty string rendering")
	}
}
