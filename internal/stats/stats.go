// Package stats provides the small descriptive-statistics helpers used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // population standard deviation
	Min  float64
	Max  float64
}

// Summarize computes a Summary; an empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy; empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
