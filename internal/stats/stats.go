// Package stats provides the small descriptive-statistics helpers used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // population standard deviation
	Min  float64
	Max  float64
}

// Summarize computes a Summary; an empty input yields the zero Summary.
// A NaN anywhere in the input yields a Summary with every statistic NaN:
// silently folding NaN would instead corrupt the result (NaN satisfies no
// ordering, so Min would stick at +Inf and Max at -Inf while Mean/Std
// poison quietly).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	if hasNaN(xs) {
		nan := math.NaN()
		return Summary{N: len(xs), Mean: nan, Std: nan, Min: nan, Max: nan}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for empty input, NaN when any input
// is NaN).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// hasNaN reports whether any value is NaN.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy; empty input yields 0. A NaN anywhere in the input yields
// NaN — sort.Float64s places NaNs at an undefined position, so any rank
// could silently land on (or be displaced by) one.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if hasNaN(xs) || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
