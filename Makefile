# Build / test / lint entry points; CI runs the same targets.

GO ?= go

.PHONY: all build test race lint vet cover bench benchdiff profile clean

all: build test lint

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package so
# inter-test ordering dependencies cannot creep in; -count=1 defeats result
# caching, which would otherwise skip the reshuffled run.
test:
	$(GO) test -shuffle=on -count=1 ./...

# race covers the whole module; the parallel sweep engine (internal/runner
# and its internal/qntn call sites) and the event-driven/stepped equivalence
# suite (oracle_equiv_test.go) are the parts this target exists to gate.
race:
	$(GO) test -race -shuffle=on -count=1 ./...

# cover runs the suite under the coverage profiler, prints the per-package
# percentages as they complete and the module total at the end, and leaves
# coverage.out for go tool cover -html or the CI artifact.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

# lint runs the project invariant checkers (unitsuffix, detrand, probrange,
# errcheckclose, hotalloc, poolsafe, atomicmix — the latter backed by the
# cross-package facts engine) plus go vet; exits nonzero on any finding.
lint:
	$(GO) run ./cmd/qntnlint ./...

vet:
	$(GO) vet ./...

# bench runs the sweep benchmarks once per worker count plus the hot-path
# benchmarks (topology snapshot, routing, coverage) and writes the
# machine-readable report — timings, allocs/op, parallel speedups — to
# BENCH_sweep.json.
bench:
	$(GO) test -bench='Sweep|Snapshot|Routes|CoverageHour|CoverageDay|Walker|Qntnlint|ServeDaemon|ServeProtocol' -benchtime=1x -benchmem -run '^$$' ./internal/qntn -args -benchjson=$(CURDIR)/BENCH_sweep.json
	@cat BENCH_sweep.json

# benchdiff compares a fresh bench run against the committed baseline
# (report-only; never fails).
benchdiff:
	$(GO) test -bench='Sweep|Snapshot|Routes|CoverageHour|CoverageDay|Walker|Qntnlint|ServeDaemon|ServeProtocol' -benchtime=1x -benchmem -run '^$$' ./internal/qntn -args -benchjson=$(CURDIR)/BENCH_new.json
	$(GO) run ./cmd/benchdiff BENCH_sweep.json BENCH_new.json

# profile runs a quick full-figure workload under the CPU and heap
# profilers and prints the top CPU consumers. Explore interactively with:
#   go tool pprof profiles/qntnsim profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) build -o profiles/qntnsim ./cmd/qntnsim
	./profiles/qntnsim -quick -cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof fig6 > /dev/null
	$(GO) tool pprof -top -nodecount 15 profiles/qntnsim profiles/cpu.pprof

clean:
	$(GO) clean ./...
	rm -rf profiles BENCH_new.json coverage.out
