# Build / test / lint entry points; CI runs the same targets.

GO ?= go

.PHONY: all build test race lint vet bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the whole module; the parallel sweep engine (internal/runner
# and its internal/qntn call sites) is the part this target exists to gate.
race:
	$(GO) test -race ./...

# lint runs the project invariant checkers (unitsuffix, detrand, probrange,
# errcheckclose) plus go vet; exits nonzero on any finding.
lint:
	$(GO) run ./cmd/qntnlint ./...

vet:
	$(GO) vet ./...

# bench runs the sweep benchmarks once per worker count and writes the
# machine-readable report (timings + parallel speedups) to BENCH_sweep.json.
bench:
	$(GO) test -bench=Sweep -benchtime=1x -run '^$$' ./internal/qntn -args -benchjson=$(CURDIR)/BENCH_sweep.json
	@cat BENCH_sweep.json

clean:
	$(GO) clean ./...
