# Build / test / lint entry points; CI runs the same four targets.

GO ?= go

.PHONY: all build test race lint vet clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project invariant checkers (unitsuffix, detrand, probrange,
# errcheckclose) plus go vet; exits nonzero on any finding.
lint:
	$(GO) run ./cmd/qntnlint ./...

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
