// Package qntnbench is the paper-reproduction benchmark harness: one
// testing.B benchmark per table and figure of the evaluation section, plus
// one per ablation listed in DESIGN.md. Each benchmark prints the headline
// numbers it reproduces via b.ReportMetric, so `go test -bench=.` yields
// the same rows/series the paper reports alongside the timing.
//
// The full-fidelity workloads (whole day at 30 s steps, 100×100 request
// grid) run in seconds-to-tens-of-seconds per iteration; benchmarks report
// their paper metric on every run.
package qntnbench

import (
	"testing"
	"time"

	"qntn/internal/experiments"
	"qntn/internal/orbit"
	"qntn/internal/qkd"
	"qntn/internal/qntn"
)

// paperServeConfig is the paper's §IV-B workload: 100 random inter-LAN
// requests repeated over 100 time steps of satellite movement.
func paperServeConfig() qntn.ServeConfig {
	return qntn.ServeConfig{RequestsPerStep: 100, Steps: 100, Horizon: orbit.Day, Seed: 1}
}

// BenchmarkFig5FidelitySweep regenerates Fig. 5: transmissivity 0..1 in
// steps of 0.01 against entanglement fidelity, computed by full density
// matrix evolution (101 amplitude-damping channel applications + Uhlmann
// fidelities).
func BenchmarkFig5FidelitySweep(b *testing.B) {
	var threshold float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5(0.01)
		if err != nil {
			b.Fatal(err)
		}
		threshold, err = experiments.Fig5Threshold(points, 0.9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(threshold, "eta@F0.9")
}

// BenchmarkFig6Coverage regenerates Fig. 6: full-day coverage percentage
// for constellation sizes 6..108 (prefixes of Table II), one sweep per
// iteration.
func BenchmarkFig6Coverage(b *testing.B) {
	p := qntn.DefaultParams()
	var at108 float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig6(p, orbit.Day)
		if err != nil {
			b.Fatal(err)
		}
		at108 = points[len(points)-1].Result.Percent()
	}
	b.ReportMetric(at108, "coverage%@108")
}

// BenchmarkFig7ServedRequests regenerates Fig. 7: percentage of served
// entanglement distribution requests per constellation size, with the
// paper's 100×100 workload.
func BenchmarkFig7ServedRequests(b *testing.B) {
	p := qntn.DefaultParams()
	var served float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7And8(p, paperServeConfig())
		if err != nil {
			b.Fatal(err)
		}
		served = points[len(points)-1].Result.ServedPercent
	}
	b.ReportMetric(served, "served%@108")
}

// BenchmarkFig8Fidelity regenerates Fig. 8: average entanglement fidelity
// of resolved requests per constellation size.
func BenchmarkFig8Fidelity(b *testing.B) {
	p := qntn.DefaultParams()
	var fid float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7And8(p, paperServeConfig())
		if err != nil {
			b.Fatal(err)
		}
		fid = points[len(points)-1].Result.MeanFidelity
	}
	b.ReportMetric(fid, "fidelity@108")
}

// BenchmarkTable3Comparison regenerates Table III: space-ground (108
// satellites) vs air-ground over a full day.
func BenchmarkTable3Comparison(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(p, paperServeConfig(), orbit.Day)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CoveragePercent, "space-coverage%")
	b.ReportMetric(rows[0].MeanFidelity, "space-fidelity")
	b.ReportMetric(rows[1].ServedPercent, "air-served%")
	b.ReportMetric(rows[1].MeanFidelity, "air-fidelity")
}

// --- Ablation benchmarks (DESIGN.md) ---

// ablationServeConfig trims the workload so each ablation cell stays
// seconds-scale; the CLI (`qntnsim ablations`) runs the full grid.
func ablationServeConfig() qntn.ServeConfig {
	return qntn.ServeConfig{RequestsPerStep: 50, Steps: 25, Horizon: orbit.Day, Seed: 1}
}

// BenchmarkAblationRoutingMetric compares the paper's 1/(η+ε) metric with
// the product-optimal −log η metric and hop count.
func BenchmarkAblationRoutingMetric(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.RoutingMetricResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationRoutingMetric(p, orbit.MaxPaperSatellites, ablationServeConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch {
		case r.Metric == "hop count":
			b.ReportMetric(r.MeanPathEta, "eta-hopcount")
		case len(r.Metric) > 0 && r.Metric[0] == '1':
			b.ReportMetric(r.MeanPathEta, "eta-paper")
		default:
			b.ReportMetric(r.MeanPathEta, "eta-optimal")
		}
	}
}

// BenchmarkAblationFidelityConvention re-scores both architectures under
// the root and squared fidelity conventions.
func BenchmarkAblationFidelityConvention(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.ConventionResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationFidelityConvention(p, orbit.MaxPaperSatellites, ablationServeConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanRoot, "space-root")
	b.ReportMetric(rows[0].MeanSquared, "space-squared")
}

// BenchmarkAblationTurbulence sweeps turbulence strength over both
// architectures (the paper's future-work weather question).
func BenchmarkAblationTurbulence(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 25, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.TurbulenceResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationTurbulence(p, orbit.MaxPaperSatellites, cfg, []float64{0, 0.1, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AirMeanFidelity, "air-fid-clear")
	b.ReportMetric(rows[len(rows)-1].AirMeanFidelity, "air-fid-halfHV")
	b.ReportMetric(rows[len(rows)-1].SpaceServedPercent, "space-served%-halfHV")
}

// BenchmarkAblationElevationMask sweeps the ground-terminal elevation mask
// at 108 satellites over a 6-hour window.
func BenchmarkAblationElevationMask(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.MaskResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationElevationMask(p, orbit.MaxPaperSatellites, 6*time.Hour, []float64{10, 20, 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.MaskDeg {
		case 10:
			b.ReportMetric(r.CoveragePercent, "coverage%@10°")
		case 20:
			b.ReportMetric(r.CoveragePercent, "coverage%@20°")
		case 30:
			b.ReportMetric(r.CoveragePercent, "coverage%@30°")
		}
	}
}

// BenchmarkAblationSourcePlacement contrasts platform-source (best-split)
// with endpoint-source fidelity accounting.
func BenchmarkAblationSourcePlacement(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.PlacementResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationSourcePlacement(p, orbit.MaxPaperSatellites, ablationServeConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Architecture == qntn.SpaceGround.String() {
			b.ReportMetric(r.MeanFidelity, "space-"+r.Model.String())
		}
	}
}

// BenchmarkExtensionQKDStudy evaluates the QKD key-rate comparison across
// all geometries.
func BenchmarkExtensionQKDStudy(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.QKDRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionQKDStudy(p, qkd.DefaultDetector())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].BBM92KeyRateHz/1e6, "air-bbm92-Mbps")
	b.ReportMetric(rows[len(rows)-1].BBM92KeyRateHz/1e6, "space-zenith-Mbps")
}

// BenchmarkExtensionLatencyStudy runs the DES time-aware serving study.
func BenchmarkExtensionLatencyStudy(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 25, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionLatencyStudy(p, orbit.MaxPaperSatellites, cfg, []time.Duration{0, 10 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.MemoryT2 == 0 && r.Architecture == "air-ground" {
			b.ReportMetric(r.MeanLatency.Seconds()*1e3, "air-latency-ms")
		}
		if r.MemoryT2 == 0 && r.Architecture == "space-ground" {
			b.ReportMetric(r.MeanLatency.Seconds()*1e3, "space-latency-ms")
		}
	}
}

// BenchmarkExtensionPurification pumps pairs at the three reference path
// transmissivities.
func BenchmarkExtensionPurification(b *testing.B) {
	var rows []experiments.PurificationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionPurificationStudy([]float64{0.49, 0.72, 0.92}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Fidelity, "F-after-1-round@0.49")
}

// BenchmarkExtensionOutageStudy sweeps HAP reliability.
func BenchmarkExtensionOutageStudy(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 20, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.OutageRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionOutageStudy(p, cfg, 6*time.Hour, []float64{0, 0.2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].CoveragePercent, "coverage%@20%outage")
}

// BenchmarkExtensionMultipathStudy measures disjoint-path redundancy on the
// hybrid topology.
func BenchmarkExtensionMultipathStudy(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 20, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.MultipathRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionMultipathStudy(p, orbit.MaxPaperSatellites, cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanSuccessProbability, "P-success-1path")
	b.ReportMetric(rows[2].MeanSuccessProbability, "P-success-3paths")
}

// BenchmarkExtensionStatewide runs the six-LAN scaling study.
func BenchmarkExtensionStatewide(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 20, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.StatewideRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionStatewideStudy(p, cfg, 2*time.Hour, []int{3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ConnectedPairsPercent, "hap-reachable-pairs%")
	b.ReportMetric(rows[len(rows)-1].ConnectedPairsPercent, "space-reachable-pairs%")
}

// BenchmarkExtensionNightStudy evaluates night-only operation.
func BenchmarkExtensionNightStudy(b *testing.B) {
	p := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 20, Steps: 10, Horizon: orbit.Day, Seed: 1}
	var rows []experiments.NightRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionNightStudy(p, orbit.MaxPaperSatellites, cfg, 3*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.NightOnly && r.Architecture == "air-ground" {
			b.ReportMetric(r.ServedPercent, "air-night-served%")
		}
	}
}

// BenchmarkExtensionArrivalStudy drives Poisson arrivals through the DES.
func BenchmarkExtensionArrivalStudy(b *testing.B) {
	p := qntn.DefaultParams()
	var rows []experiments.ArrivalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionArrivalStudy(p, orbit.MaxPaperSatellites, 2*time.Hour, []float64{120}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ServedPercent, "space-queued-served%")
	b.ReportMetric(rows[0].MeanWait.Seconds(), "space-mean-wait-s")
}
