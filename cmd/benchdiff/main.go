// Command benchdiff compares two benchmark JSON reports produced by the
// -benchjson emitter (see internal/qntn/bench_sweep_test.go) and prints a
// per-benchmark before/after table of ns/op and allocs/op.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// The comparison is report-only: benchmark timings from CI runners are too
// noisy to gate on, so the command always exits 0 when both files parse.
// Benchmarks present in only one file are listed with "n/a" on the missing
// side.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

type benchRecord struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type benchReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: benchdiff OLD.json NEW.json")
	}
	oldRep, err := load(args[0])
	if err != nil {
		return err
	}
	newRep, err := load(args[1])
	if err != nil {
		return err
	}
	if oldRep.NumCPU != newRep.NumCPU || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: host shape differs (old %d CPUs / GOMAXPROCS %d, new %d / %d); timings are not directly comparable\n",
			oldRep.NumCPU, oldRep.GOMAXPROCS, newRep.NumCPU, newRep.GOMAXPROCS)
	}

	type key struct {
		name    string
		workers int
	}
	oldBy := make(map[key]benchRecord)
	for _, r := range oldRep.Benchmarks {
		oldBy[key{r.Name, r.Workers}] = r
	}
	newBy := make(map[key]benchRecord)
	for _, r := range newRep.Benchmarks {
		newBy[key{r.Name, r.Workers}] = r
	}
	keys := make([]key, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].workers < keys[j].workers
	})

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tworkers\tns/op old\tns/op new\tdelta\tallocs old\tallocs new")
	for _, k := range keys {
		o, haveOld := oldBy[k]
		n, haveNew := newBy[k]
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			k.name, k.workers,
			fmtNs(o.NsPerOp, haveOld), fmtNs(n.NsPerOp, haveNew),
			fmtDelta(o.NsPerOp, n.NsPerOp, haveOld && haveNew),
			fmtCount(o.AllocsPerOp, haveOld), fmtCount(n.AllocsPerOp, haveNew))
	}
	return tw.Flush()
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func fmtNs(ns float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtCount(v float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", v)
}

// fmtDelta renders the new/old timing ratio as a signed percentage
// (negative = faster).
func fmtDelta(oldNs, newNs float64, ok bool) string {
	if !ok || oldNs <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newNs-oldNs)/oldNs)
}
