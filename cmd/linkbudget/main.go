// Command linkbudget prints the FSO link-budget breakdown (diffraction,
// atmospheric, receiver factors and the resulting transmissivity/fidelity)
// for the calibrated satellite and HAP channels — the tool used to derive
// the calibration documented in DESIGN.md.
//
// Usage:
//
//	linkbudget            # satellite elevation sweep + HAP city links
//	linkbudget -turbulence
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"qntn/internal/atmosphere"
	"qntn/internal/channel"
	"qntn/internal/geo"
	"qntn/internal/qntn"
	"qntn/internal/quantum"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linkbudget:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("linkbudget", flag.ContinueOnError)
	fs.SetOutput(w)
	withTurb := fs.Bool("turbulence", false, "include nominal HV5/7 turbulence")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := qntn.DefaultParams()
	if *withTurb {
		hv := atmosphere.HV57()
		p.Turbulence = &hv
	}
	sat := p.SpaceDownlinkFSO()
	hap := p.HAPDownlinkFSO()

	fmt.Fprintf(w, "parameters: λ=%.0f nm, space waist %.3f m, HAP waist %.3f m, τ_zenith=%.3f, η_eff=%.3f, threshold=%.2f, mask=%.0f°\n\n",
		p.WavelengthM*1e9, p.SpaceBeamWaistM, p.HAPBeamWaistM,
		p.ZenithOpticalDepth, p.ReceiverEfficiency,
		p.TransmissivityThreshold, geo.Deg(p.MinElevationRad))

	fmt.Fprintln(w, "satellite downlink (500 km altitude), per elevation:")
	fmt.Fprintf(w, "%6s %10s %8s %8s %8s %8s %8s\n", "elev", "slant km", "diff", "atm", "eta", "usable", "F(2 legs)")
	re := geo.EarthRadiusM
	h := p.SatelliteAltitudeM
	for _, deg := range []float64{10, 15, 20, 25, 30, 40, 50, 60, 75, 90} {
		e := geo.Rad(deg)
		slant := math.Sqrt((re+h)*(re+h)-re*re*math.Cos(e)*math.Cos(e)) - re*math.Sin(e)
		b := sat.Breakdown(channel.FSOGeometry{RangeM: slant, ElevationRad: e, LoAltM: 0, HiAltM: h})
		eta := b.Total()
		usable := eta >= p.TransmissivityThreshold && e >= p.MinElevationRad
		f := quantum.AnalyticBellFidelityBothArms(eta, eta)
		fmt.Fprintf(w, "%5.0f° %10.1f %8.4f %8.4f %8.4f %8v %8.4f\n",
			deg, slant/1000, b.Diffraction, b.Atmospheric, eta, usable, f)
	}

	fmt.Fprintln(w, "\nHAP downlink (30 km altitude) to each local network:")
	fmt.Fprintf(w, "%6s %8s %10s %8s %8s %8s\n", "LAN", "elev", "slant km", "diff", "atm", "eta")
	hapPos := geo.LLA{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg, AltM: p.HAPAltM}
	for _, lan := range qntn.GroundNetworks() {
		la := geo.Look(lan.Centroid(), hapPos.ECEF())
		b := hap.Breakdown(channel.FSOGeometry{
			RangeM:       la.SlantRangeM,
			ElevationRad: la.ElevationRad,
			LoAltM:       0,
			HiAltM:       p.HAPAltM,
		})
		fmt.Fprintf(w, "%6s %7.1f° %10.1f %8.4f %8.4f %8.4f\n",
			lan.Name, geo.Deg(la.ElevationRad), la.SlantRangeM/1000, b.Diffraction, b.Atmospheric, b.Total())
	}

	fmt.Fprintln(w, "\nHAP end-to-end (platform source, one downlink per arm):")
	nets := qntn.GroundNetworks()
	for i := 0; i < len(nets); i++ {
		for j := i + 1; j < len(nets); j++ {
			la1 := geo.Look(nets[i].Centroid(), hapPos.ECEF())
			la2 := geo.Look(nets[j].Centroid(), hapPos.ECEF())
			eta1 := hap.Transmissivity(channel.FSOGeometry{RangeM: la1.SlantRangeM, ElevationRad: la1.ElevationRad, HiAltM: p.HAPAltM})
			eta2 := hap.Transmissivity(channel.FSOGeometry{RangeM: la2.SlantRangeM, ElevationRad: la2.ElevationRad, HiAltM: p.HAPAltM})
			f := quantum.AnalyticBellFidelityBothArms(eta1, eta2)
			fmt.Fprintf(w, "  %s ↔ %s: fidelity %.4f\n", nets[i].Name, nets[j].Name, f)
		}
	}
	return nil
}
