package main

import (
	"strings"
	"testing"
)

func TestRunClear(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"satellite downlink", "HAP downlink", "TTU", "EPB", "ORNL", "fidelity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("linkbudget output missing %q:\n%s", want, out)
		}
	}
	// The calibrated budget must show usable links above ~25° and the
	// threshold binding below.
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatal("expected both usable and unusable elevations in the table")
	}
}

func TestRunTurbulent(t *testing.T) {
	var clear, turb strings.Builder
	if err := run(nil, &clear); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-turbulence"}, &turb); err != nil {
		t.Fatal(err)
	}
	if clear.String() == turb.String() {
		t.Fatal("turbulence flag had no effect")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
