package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAir(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-arch", "air", "-duration", "30m"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "air-ground") || !strings.Contains(out, "100.00%") {
		t.Fatalf("air coverage output:\n%s", out)
	}
}

func TestRunSpace(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-arch", "space", "-n", "108", "-duration", "1h", "-intervals"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "space-ground") || !strings.Contains(out, "interval") {
		t.Fatalf("space coverage output:\n%s", out)
	}
}

func TestRunHybrid(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-arch", "hybrid", "-n", "6", "-duration", "30m"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hybrid") {
		t.Fatalf("hybrid output:\n%s", b.String())
	}
}

func TestRunFromSheets(t *testing.T) {
	// Generate sheets with the constellation tool's library path, then
	// replay them.
	dir := t.TempDir()
	sheetPath := filepath.Join(dir, "s.csv")
	if err := writeTestSheets(sheetPath); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-arch", "space", "-sheets", sheetPath, "-duration", "30m"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "relays:         6") {
		t.Fatalf("sheet replay output:\n%s", b.String())
	}
}

func TestRunRejectsBadArch(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-arch", "submarine"}, &b); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if err := run([]string{"-arch", "space", "-sheets", "/nonexistent.csv"}, &b); err == nil {
		t.Fatal("missing sheet file accepted")
	}
}

func TestRunTimeline(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-arch", "space", "-n", "108", "-duration", "2h", "-timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "timeline") {
		t.Fatalf("timeline missing:\n%s", out)
	}
	// A 2h space window has both covered and uncovered cells.
	if !strings.Contains(out, "█") && !strings.Contains(out, "▒") {
		t.Fatal("no covered cells rendered")
	}
	if !strings.Contains(out, "·") {
		t.Fatal("no uncovered cells rendered")
	}
}
