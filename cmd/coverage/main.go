// Command coverage analyzes the regional coverage of a QNTN architecture:
// either the air-ground HAP, or a space-ground constellation defined by a
// satellite count or a movement-sheet CSV produced by cmd/constellation.
//
// Usage:
//
//	coverage -arch air
//	coverage -arch space -n 108 -duration 24h
//	coverage -arch space -sheets sheets.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	fs.SetOutput(w)
	arch := fs.String("arch", "space", `architecture: "space", "air", or "hybrid"`)
	n := fs.Int("n", orbit.MaxPaperSatellites, "satellite count for -arch space/hybrid")
	sheetsPath := fs.String("sheets", "", "movement-sheet CSV (overrides -n propagation)")
	duration := fs.Duration("duration", orbit.Day, "analysis span")
	showIntervals := fs.Bool("intervals", false, "list each connected interval")
	showPairs := fs.Bool("pairs", false, "break coverage down per LAN pair and report link churn")
	showTimeline := fs.Bool("timeline", false, "print an hour-by-hour coverage strip")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := qntn.DefaultParams()
	var sc *qntn.Scenario
	var err error
	switch *arch {
	case "air":
		sc, err = qntn.NewAirGround(p)
	case "hybrid":
		sc, err = qntn.NewHybrid(*n, p)
	case "space":
		if *sheetsPath != "" {
			f, ferr := os.Open(*sheetsPath)
			if ferr != nil {
				return ferr
			}
			sheets, rerr := trace.Read(f)
			cerr := f.Close()
			if rerr != nil {
				return rerr
			}
			if cerr != nil {
				return cerr
			}
			sc, err = qntn.NewSpaceGroundFromSheets(sheets, p)
		} else {
			sc, err = qntn.NewSpaceGround(*n, p)
		}
	default:
		return fmt.Errorf("unknown architecture %q", *arch)
	}
	if err != nil {
		return err
	}

	res, err := sc.Coverage(*duration)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "architecture:   %s\n", sc.Arch)
	fmt.Fprintf(w, "relays:         %d\n", len(sc.RelayIDs))
	fmt.Fprintf(w, "span:           %v (%d steps of %v)\n", *duration, res.Steps, sc.Params.StepInterval)
	fmt.Fprintf(w, "covered:        %v across %d intervals\n", res.Covered, len(res.Intervals))
	fmt.Fprintf(w, "coverage:       %.2f%%\n", res.Percent())
	if *showIntervals {
		for i, iv := range res.Intervals {
			fmt.Fprintf(w, "  interval %3d: %v — %v (%v)\n", i+1, iv.Start, iv.End, iv.Duration())
		}
	}
	if *showPairs {
		detail, err := sc.DetailedCoverage(*duration)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "per-pair coverage:")
		for _, p := range detail.Pairs {
			fmt.Fprintf(w, "  %4s ↔ %-4s %7.2f%% (%d intervals)\n",
				p.NetworkA, p.NetworkB, p.Result.Percent(), len(p.Result.Intervals))
		}
		fmt.Fprintf(w, "link transitions: %d\n", detail.LinkTransitions)
	}
	if *showTimeline {
		printTimeline(w, res, *duration)
	}
	return nil
}

// printTimeline renders the coverage intervals as a strip of 72 buckets
// ('█' fully covered, '▒' partially, '·' uncovered), one line per strip,
// with hour marks.
func printTimeline(w io.Writer, res *qntn.CoverageResult, duration time.Duration) {
	const buckets = 72
	bucket := duration / buckets
	if bucket <= 0 {
		return
	}
	covered := make([]time.Duration, buckets)
	for _, iv := range res.Intervals {
		for b := 0; b < buckets; b++ {
			lo := time.Duration(b) * bucket
			hi := lo + bucket
			s, e := iv.Start, iv.End
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				covered[b] += e - s
			}
		}
	}
	fmt.Fprintf(w, "timeline (each cell %v):\n  ", bucket.Truncate(time.Second))
	for b := 0; b < buckets; b++ {
		frac := float64(covered[b]) / float64(bucket)
		switch {
		case frac >= 0.999:
			fmt.Fprint(w, "█")
		case frac > 0:
			fmt.Fprint(w, "▒")
		default:
			fmt.Fprint(w, "·")
		}
	}
	fmt.Fprintf(w, "\n  0%*s%v\n", 71, "", duration)
}
