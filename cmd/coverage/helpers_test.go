package main

import (
	"os"
	"time"

	"qntn/internal/orbit"
	"qntn/internal/trace"
)

// writeTestSheets exports 30 minutes of movement sheets for the first six
// Table II satellites.
func writeTestSheets(path string) error {
	elems, err := orbit.PaperConstellation(6)
	if err != nil {
		return err
	}
	sheets, err := orbit.GenerateSheets(elems, 30*time.Minute, 30*time.Second)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Write(f, sheets)
}
