package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"qntn/internal/telemetry"
)

// writeTelemetry flushes a completed run's collector into -telemetry-dir:
// manifest.json (identity + timings), metrics.txt and metrics.prom (the
// registry in text and Prometheus exposition format), and events.ndjson when
// -events collected per-step traces. No-op when the run was uninstrumented.
func writeTelemetry(opt options, cmd, paramsHash string, col *telemetry.Collector, runSpan *telemetry.Span) error {
	if col == nil {
		return nil
	}
	if err := os.MkdirAll(opt.telDir, 0o755); err != nil {
		return err
	}
	phase := runSpan.End()
	m := telemetry.Manifest{
		Command:     cmd,
		ParamsHash:  paramsHash,
		Seed:        opt.seed,
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		WallNs:      phase.WallNs,
		CPUSeconds:  telemetry.ProcessCPUSeconds(),
		Phases:      []telemetry.Phase{phase},
		Summary:     summaryFromRegistry(col.Registry),
	}
	if err := writeTelemetryFile(opt.telDir, "manifest.json", func(f *os.File) error {
		return telemetry.WriteManifest(f, m)
	}); err != nil {
		return err
	}
	if err := writeTelemetryFile(opt.telDir, "metrics.txt", func(f *os.File) error {
		return col.Registry.WriteText(f)
	}); err != nil {
		return err
	}
	if err := writeTelemetryFile(opt.telDir, "metrics.prom", func(f *os.File) error {
		return col.Registry.WritePrometheus(f)
	}); err != nil {
		return err
	}
	if col.Events != nil {
		if err := writeTelemetryFile(opt.telDir, "events.ndjson", func(f *os.File) error {
			return col.Events.WriteNDJSON(f)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeTelemetryFile(dir, name string, fn func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("telemetry %s: %w", name, werr)
	}
	return cerr
}

// summaryFromRegistry flattens the final registry state into the manifest's
// summary map: counters and gauges by name, histograms as _count/_sum.
func summaryFromRegistry(reg *telemetry.Registry) map[string]float64 {
	snap := reg.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for _, m := range snap {
		if m.Kind == "histogram" {
			out[m.Name+"_count"] = float64(m.Count)
			out[m.Name+"_sum"] = m.Sum
			continue
		}
		out[m.Name] = m.Value
	}
	return out
}

// gitDescribe best-effort identifies the working tree ("" when git or the
// repository is unavailable — the manifest omits the field).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
