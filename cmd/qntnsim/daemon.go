package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qntn/internal/qntn"
)

// runServeDaemon starts the persistent traffic-engine daemon on -addr and
// blocks until SIGINT/SIGTERM, then drains in-flight queries before
// returning. The listen address is printed once the socket is bound, so
// scripts using -addr :0 can scrape the chosen port.
func runServeDaemon(w io.Writer, p qntn.Params, addr string) error {
	d, err := qntn.NewDaemon(p, time.Now)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serve-daemon listening on %s\n", ln.Addr())
	fmt.Fprintf(w, "POST /v1/traffic for NDJSON results, GET /metrics for Prometheus metrics\n")

	srv := &http.Server{Handler: d.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve never returns nil; surface the listener failure.
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(w, "serve-daemon: signal received, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("serve-daemon: drain: %w", err)
		}
		fmt.Fprintln(w, "serve-daemon: drained, shutting down")
		return nil
	}
}
