// Command qntnsim reproduces the paper's evaluation: each subcommand
// regenerates one table or figure (or runs the ablation studies), printing
// the same rows/series the paper reports.
//
// Usage:
//
//	qntnsim fig5                 # transmissivity vs entanglement fidelity
//	qntnsim fig6  [-duration 24h]
//	qntnsim fig7  [-steps 100 -requests 100]
//	qntnsim fig8  [-steps 100 -requests 100]
//	qntnsim table3
//	qntnsim ablations            # routing metric, convention, masks,
//	                             # placement, turbulence, orbit design
//	qntnsim latency|purify|qkd|night|statewide|outage|degrade|
//	        multipath|throughput|arrivals|protocol  # extension studies
//	                             # (see DESIGN.md)
//	qntnsim serve-daemon [-addr 127.0.0.1:9641]  # persistent traffic-engine
//	                             # HTTP daemon (see DESIGN.md "Traffic
//	                             # engine & serve daemon")
//	qntnsim params               # dump the default parameter file
//	qntnsim all
//
// Global flags (before the subcommand): -seed, -steps, -requests,
// -duration, -quick, -csvdir <dir>, -params <file>, -parallel <N>
// (sweep worker pool size; 0 means one worker per CPU — every sweep
// produces identical output regardless of the value), the fault-injection
// group -fault-mtbf/-fault-mttr/-fault-seed/-weather-p (deterministic
// platform outages and weather blackouts; see DESIGN.md "Fault injection &
// degraded modes"), the profiling pair -cpuprofile <file> /
// -memprofile <file> (see `make profile`), and the telemetry pair
// -telemetry-dir <dir> / -events: -telemetry-dir instruments the run and
// writes manifest.json plus metrics.txt/metrics.prom into the directory;
// -events additionally collects per-step NDJSON traces into events.ndjson
// (see DESIGN.md "Observability").
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"qntn/internal/experiments"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/qkd"
	"qntn/internal/qntn"
	"qntn/internal/quantum/protocol"
	"qntn/internal/routing"
	"qntn/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qntnsim:", err)
		os.Exit(1)
	}
}

type options struct {
	seed       int64
	steps      int
	requests   int
	duration   time.Duration
	quick      bool
	csvDir     string
	paramsPath string
	parallel   int
	cpuProfile string
	memProfile string
	faultMTBF  time.Duration
	faultMTTR  time.Duration
	faultSeed  int64
	weatherP   float64
	telDir      string
	events      bool
	eventDriven bool

	walkerShells   string
	islGrid        bool
	ground         string
	noSpatialIndex bool
	addr           string
}

// applyFaults overlays the fault flags onto the parameter set (after any
// -params file, so the flags win). With no fault flags set the params are
// returned untouched and fault-free runs stay byte-identical to the
// baseline.
func (o options) applyFaults(p qntn.Params) (qntn.Params, error) {
	if o.faultMTBF < 0 || o.faultMTTR < 0 {
		return p, fmt.Errorf("-fault-mtbf and -fault-mttr must be positive durations")
	}
	if o.faultMTBF == 0 && o.weatherP == 0 && o.faultSeed == 0 {
		return p, nil
	}
	if o.faultMTBF > 0 {
		mttr := o.faultMTTR
		if mttr <= 0 {
			mttr = 10 * time.Minute
		}
		p.Fault.SatMTBF, p.Fault.SatMTTR = o.faultMTBF, mttr
		p.Fault.HAPMTBF, p.Fault.HAPMTTR = o.faultMTBF, mttr
	}
	if o.weatherP != 0 {
		p.Fault.WeatherP = o.weatherP
	}
	if o.faultSeed != 0 {
		p.Fault.Seed = o.faultSeed
	}
	if err := p.Fault.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// writeCSV writes one experiment's CSV file into the -csvdir directory (a
// no-op when the flag is unset).
func (o options) writeCSV(name string, fn func(io.Writer) error) error {
	if o.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.csvDir, name))
	if err != nil {
		return err
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("qntnsim", flag.ContinueOnError)
	fs.SetOutput(w)
	opt := options{}
	fs.Int64Var(&opt.seed, "seed", 1, "workload random seed")
	fs.IntVar(&opt.steps, "steps", 100, "satellite-movement steps per serve experiment")
	fs.IntVar(&opt.requests, "requests", 100, "requests per step")
	fs.DurationVar(&opt.duration, "duration", orbit.Day, "coverage horizon")
	fs.BoolVar(&opt.quick, "quick", false, "scale workloads down for a fast smoke run")
	fs.StringVar(&opt.csvDir, "csvdir", "", "also write machine-readable CSVs into this directory")
	fs.StringVar(&opt.paramsPath, "params", "", "load simulation parameters from a JSON file (see the `params` subcommand)")
	fs.IntVar(&opt.parallel, "parallel", 0, "sweep worker pool size (0 = one worker per CPU); results are identical at any value")
	fs.StringVar(&opt.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&opt.memProfile, "memprofile", "", "write a heap profile to this file when the run finishes")
	fs.DurationVar(&opt.faultMTBF, "fault-mtbf", 0, "inject platform outages: mean time between failures for satellites and HAPs (0 = no outages)")
	fs.DurationVar(&opt.faultMTTR, "fault-mttr", 0, "mean time to repair for injected outages (default 10m when -fault-mtbf is set)")
	fs.Int64Var(&opt.faultSeed, "fault-seed", 0, "fault schedule random seed (0 keeps the params file's seed)")
	fs.Float64Var(&opt.weatherP, "weather-p", 0, "long-run fraction of time a regional weather blackout affects ground FSO links, in [0,1)")
	fs.StringVar(&opt.telDir, "telemetry-dir", "", "instrument the run and write manifest.json, metrics.txt and metrics.prom into this directory")
	fs.BoolVar(&opt.events, "events", false, "with -telemetry-dir, also collect per-step NDJSON event traces into events.ndjson")
	fs.BoolVar(&opt.eventDriven, "event-driven", false, "drive coverage and serve runs from precomputed visibility windows instead of brute-force stepping (results are identical; telemetry-instrumented runs always step)")
	fs.StringVar(&opt.walkerShells, "walker-shells", "1008/24/1@550:53", "walker subcommand: multi-shell constellation spec t/p/f@altkm:incdeg[,...]")
	fs.BoolVar(&opt.islGrid, "isl-grid", false, "walker subcommand: restrict inter-satellite links to the +grid topology (intra-plane ring + adjacent planes)")
	fs.StringVar(&opt.ground, "ground", "paper", "walker subcommand: ground set, paper (Table I Tennessee LANs) or global (plus five metro LANs on other continents)")
	fs.BoolVar(&opt.noSpatialIndex, "no-spatial-index", false, "force dense n² candidate generation instead of the spatial index (results are identical; differential-testing escape hatch)")
	fs.StringVar(&opt.addr, "addr", "127.0.0.1:9641", "serve-daemon subcommand: HTTP listen address")
	fs.Usage = func() {
		fmt.Fprintln(w, "usage: qntnsim [flags] fig5|fig6|fig7|fig8|table3|ablations|latency|purify|qkd|night|statewide|outage|degrade|multipath|throughput|arrivals|protocol|serve-daemon|walker|params|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing subcommand")
	}
	if opt.events && opt.telDir == "" {
		return fmt.Errorf("-events requires -telemetry-dir")
	}
	if opt.quick {
		opt.steps = 10
		opt.requests = 20
		if opt.duration > 2*time.Hour {
			opt.duration = 2 * time.Hour
		}
	}
	if opt.cpuProfile != "" {
		f, ferr := os.Create(opt.cpuProfile)
		if ferr != nil {
			return ferr
		}
		// runtime/pprof's profile writer discards errors from the
		// underlying io.Writer, so capture them ourselves: a truncated
		// profile must fail the run, not parse as a mystery later.
		ew := &errorCapturingWriter{w: f}
		if perr := pprof.StartCPUProfile(ew); perr != nil {
			if cerr := f.Close(); cerr != nil {
				return fmt.Errorf("%w (and closing profile: %v)", perr, cerr)
			}
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			cerr := f.Close()
			if err == nil {
				err = ew.err
			}
			if err == nil {
				err = cerr
			}
		}()
	}
	if opt.memProfile != "" {
		defer func() {
			if err == nil {
				err = writeHeapProfile(opt.memProfile)
			}
		}()
	}

	cmd := fs.Arg(0)
	params := qntn.DefaultParams()
	if opt.paramsPath != "" {
		f, err := os.Open(opt.paramsPath)
		if err != nil {
			return err
		}
		params, err = qntn.LoadParams(f)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
	}
	params, err = opt.applyFaults(params)
	if err != nil {
		return err
	}
	params.EventDriven = opt.eventDriven
	params.DisableSpatialIndex = opt.noSpatialIndex
	serveCfg := qntn.ServeConfig{
		RequestsPerStep: opt.requests,
		Steps:           opt.steps,
		Horizon:         orbit.Day,
		Seed:            opt.seed,
	}

	// -telemetry-dir instruments every scenario the run assembles; the
	// collector is flushed to disk after the subcommand succeeds. The hash
	// is taken before wiring so it reflects the physical configuration only.
	var col *telemetry.Collector
	var runSpan *telemetry.Span
	paramsHash := ""
	if opt.telDir != "" {
		paramsHash = qntn.ParamsHash(params)
		col = telemetry.NewCollector()
		if !opt.events {
			col.Events = nil
		}
		params.Telemetry = col
		runSpan = telemetry.StartSpan(cmd, time.Now)
	}

	runErr := func() error {
		switch cmd {
		case "fig5":
			return runFig5(w, opt)
		case "fig6":
			return runFig6(w, params, opt.duration, opt)
		case "fig7", "fig8":
			return runFig78(w, params, serveCfg, cmd, opt)
		case "table3":
			return runTable3(w, params, serveCfg, opt.duration, opt)
		case "ablations":
			return runAblations(w, params, serveCfg, opt.duration, opt.parallel)
		case "latency":
			return runLatency(w, params, serveCfg, opt)
		case "purify":
			return runPurify(w, opt)
		case "qkd":
			return runQKD(w, params, opt)
		case "night":
			return runNight(w, params, serveCfg, opt.duration, opt)
		case "params":
			return qntn.SaveParams(w, params)
		case "statewide":
			return runStatewide(w, params, serveCfg, opt.duration, opt.parallel)
		case "outage":
			return runOutage(w, params, serveCfg, opt.duration)
		case "degrade":
			return runDegrade(w, params, serveCfg, opt)
		case "multipath":
			return runMultipath(w, params, serveCfg, opt.parallel)
		case "protocol":
			return runProtocol(w, params, serveCfg, opt)
		case "throughput":
			return runThroughput(w, params, serveCfg)
		case "arrivals":
			return runArrivals(w, params, opt.duration, opt.seed)
		case "serve-daemon":
			return runServeDaemon(w, params, opt.addr)
		case "walker":
			return runWalker(w, params, opt)
		case "all":
			for _, f := range []func() error{
				func() error { return runFig5(w, opt) },
				func() error { return runFig6(w, params, opt.duration, opt) },
				func() error { return runFig78(w, params, serveCfg, "fig7", opt) },
				func() error { return runFig78(w, params, serveCfg, "fig8", opt) },
				func() error { return runTable3(w, params, serveCfg, opt.duration, opt) },
				func() error { return runAblations(w, params, serveCfg, opt.duration, opt.parallel) },
				func() error { return runLatency(w, params, serveCfg, opt) },
				func() error { return runPurify(w, opt) },
				func() error { return runQKD(w, params, opt) },
				func() error { return runNight(w, params, serveCfg, opt.duration, opt) },
				func() error { return runStatewide(w, params, serveCfg, opt.duration, opt.parallel) },
				func() error { return runOutage(w, params, serveCfg, opt.duration) },
				func() error { return runDegrade(w, params, serveCfg, opt) },
				func() error { return runMultipath(w, params, serveCfg, opt.parallel) },
				func() error { return runProtocol(w, params, serveCfg, opt) },
				func() error { return runThroughput(w, params, serveCfg) },
				func() error { return runArrivals(w, params, opt.duration, opt.seed) },
			} {
				if err := f(); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		default:
			fs.Usage()
			return fmt.Errorf("unknown subcommand %q", cmd)
		}
	}()
	if runErr != nil {
		return runErr
	}
	return writeTelemetry(opt, cmd, paramsHash, col, runSpan)
}

// errorCapturingWriter remembers the first write error, because
// runtime/pprof's internal profile builder drops errors from the writer it
// is handed.
type errorCapturingWriter struct {
	w   io.Writer
	err error
}

func (ew *errorCapturingWriter) Write(p []byte) (int, error) {
	n, err := ew.w.Write(p)
	if err != nil && ew.err == nil {
		ew.err = err
	}
	return n, err
}

// writeHeapProfile snapshots the heap into path after a final GC, so the
// profile reflects live objects rather than garbage awaiting collection.
// The profile is serialized to memory first: pprof swallows writer errors,
// and the file write below is where failure is actually observable.
func writeHeapProfile(path string) error {
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(buf.Bytes())
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func runFig5(w io.Writer, opt options) error {
	points, err := experiments.Fig5(0.01)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("fig5.csv", func(f io.Writer) error { return experiments.Fig5CSV(f, points) }); err != nil {
		return err
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i], ys[i] = p.Eta, p.FidelityRoot
	}
	if err := experiments.RenderSeries(w, "Fig. 5 — transmissivity vs entanglement fidelity",
		"transmissivity", "fidelity", xs, ys); err != nil {
		return err
	}
	eta, err := experiments.Fig5Threshold(points, 0.9)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "first transmissivity with fidelity ≥ 0.90: %.2f (paper adopts the conservative 0.70)\n", eta)
	return nil
}

func runFig6(w io.Writer, p qntn.Params, duration time.Duration, opt options) error {
	points, err := experiments.Fig6Parallel(p, duration, opt.parallel)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("fig6.csv", func(f io.Writer) error { return experiments.Fig6CSV(f, points) }); err != nil {
		return err
	}
	rows := make([][]string, len(points))
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, pt := range points {
		rows[i] = []string{
			strconv.Itoa(pt.Satellites),
			experiments.FormatPercent(pt.Result.Percent()),
			pt.Result.Covered.Truncate(time.Second).String(),
			strconv.Itoa(len(pt.Result.Intervals)),
		}
		xs[i], ys[i] = float64(pt.Satellites), pt.Result.Percent()
	}
	title := fmt.Sprintf("Fig. 6 — coverage of the space-ground network over %v", duration)
	if err := experiments.RenderTable(w, title,
		[]string{"satellites", "coverage", "covered time", "intervals"}, rows); err != nil {
		return err
	}
	return experiments.RenderSeries(w, "", "satellites", "coverage %", xs, ys)
}

func runFig78(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, which string, opt options) error {
	points, err := experiments.Fig7And8Parallel(p, cfg, opt.parallel)
	if err != nil {
		return err
	}
	if err := opt.writeCSV(which+".csv", func(f io.Writer) error { return experiments.Fig78CSV(f, points) }); err != nil {
		return err
	}
	rows := make([][]string, len(points))
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, pt := range points {
		rows[i] = []string{
			strconv.Itoa(pt.Satellites),
			experiments.FormatPercent(pt.Result.ServedPercent),
			fmt.Sprintf("%.4f", pt.Result.MeanFidelity),
		}
		xs[i] = float64(pt.Satellites)
		if which == "fig7" {
			ys[i] = pt.Result.ServedPercent
		} else {
			ys[i] = pt.Result.MeanFidelity
		}
	}
	title := "Fig. 7 — served entanglement distribution requests"
	yLabel := "served %"
	if which == "fig8" {
		title = "Fig. 8 — average entanglement fidelity of resolved requests"
		yLabel = "fidelity"
	}
	if err := experiments.RenderTable(w, title,
		[]string{"satellites", "served", "mean fidelity"}, rows); err != nil {
		return err
	}
	return experiments.RenderSeries(w, "", "satellites", yLabel, xs, ys)
}

func runTable3(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, duration time.Duration, opt options) error {
	rows, err := experiments.Table3Parallel(p, cfg, duration, opt.parallel)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("table3.csv", func(f io.Writer) error { return experiments.Table3CSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			experiments.FormatPercent(r.CoveragePercent),
			experiments.FormatPercent(r.ServedPercent),
			experiments.FormatFidelity(r.MeanFidelity),
		}
	}
	return experiments.RenderTable(w, "Table III — architecture comparison",
		[]string{"architecture", "P (coverage)", "serving requests", "entanglement fidelity"}, cells)
}

func runAblations(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, duration time.Duration, parallel int) error {
	const nSats = orbit.MaxPaperSatellites

	routing, err := experiments.AblationRoutingMetricParallel(p, nSats, cfg, parallel)
	if err != nil {
		return err
	}
	rows := make([][]string, len(routing))
	for i, r := range routing {
		rows[i] = []string{r.Metric, experiments.FormatPercent(r.ServedPercent),
			fmt.Sprintf("%.4f", r.MeanFidelity), fmt.Sprintf("%.4f", r.MeanPathEta), fmt.Sprintf("%.2f", r.MeanHops)}
	}
	if err := experiments.RenderTable(w, "Ablation — routing cost metric (hybrid: HAP + 108 satellites)",
		[]string{"metric", "served", "fidelity", "path eta", "hops"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)

	conv, err := experiments.AblationFidelityConventionParallel(p, nSats, cfg, parallel)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range conv {
		rows = append(rows, []string{r.Architecture, fmt.Sprintf("%.4f", r.MeanRoot), fmt.Sprintf("%.4f", r.MeanSquared)})
	}
	if err := experiments.RenderTable(w, "Ablation — fidelity convention (root vs literal Eq. 5)",
		[]string{"architecture", "root", "squared"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)

	masks, err := experiments.AblationElevationMaskParallel(p, nSats, duration, []float64{10, 15, 20, 25, 30}, parallel)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range masks {
		rows = append(rows, []string{fmt.Sprintf("%.0f°", r.MaskDeg), experiments.FormatPercent(r.CoveragePercent)})
	}
	if err := experiments.RenderTable(w, fmt.Sprintf("Ablation — elevation mask (108 satellites, %v)", duration),
		[]string{"mask", "coverage"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)

	placement, err := experiments.AblationSourcePlacementParallel(p, nSats, cfg, parallel)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range placement {
		rows = append(rows, []string{r.Architecture, r.Model.String(), fmt.Sprintf("%.4f", r.MeanFidelity)})
	}
	if err := experiments.RenderTable(w, "Ablation — entanglement source placement",
		[]string{"architecture", "model", "fidelity"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)

	turb, err := experiments.AblationTurbulenceParallel(p, nSats, cfg, []float64{0, 0.05, 0.1, 0.25, 0.5, 1}, parallel)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range turb {
		rows = append(rows, []string{
			fmt.Sprintf("%.2fx", r.Scale),
			experiments.FormatPercent(r.SpaceServedPercent), fmt.Sprintf("%.4f", r.SpaceMeanFidelity),
			experiments.FormatPercent(r.AirServedPercent), fmt.Sprintf("%.4f", r.AirMeanFidelity),
		})
	}
	if err := experiments.RenderTable(w, "Ablation — turbulence strength (HV5/7 scale)",
		[]string{"turbulence", "space served", "space fidelity", "air served", "air fidelity"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)

	design, err := experiments.AblationOrbitDesignParallel(p, nSats, duration,
		[]float64{400, 500, 700, 1000}, []float64{40, 53, 70}, parallel)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range design {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f km", r.AltitudeKM),
			fmt.Sprintf("%.0f°", r.InclinationDeg),
			experiments.FormatPercent(r.CoveragePercent),
		})
	}
	return experiments.RenderTable(w, fmt.Sprintf("Ablation — constellation design (108 satellites, %v)", duration),
		[]string{"altitude", "inclination", "coverage"}, rows)
}

func runLatency(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, opt options) error {
	t2s := []time.Duration{0, 100 * time.Millisecond, 10 * time.Millisecond, time.Millisecond}
	rows, err := experiments.ExtensionLatencyStudy(p, orbit.MaxPaperSatellites, cfg, t2s)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("latency.csv", func(f io.Writer) error { return experiments.LatencyCSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		t2 := "ideal"
		if r.MemoryT2 > 0 {
			t2 = r.MemoryT2.String()
		}
		cells[i] = []string{
			r.Architecture, t2,
			experiments.FormatPercent(r.ServedPercent),
			fmt.Sprintf("%.4f", r.MeanFidelity),
			r.MeanLatency.Truncate(time.Microsecond).String(),
			r.MaxLatency.Truncate(time.Microsecond).String(),
		}
	}
	return experiments.RenderTable(w, "Extension — heralding latency and memory dephasing (DES serving)",
		[]string{"architecture", "memory T2", "served", "fidelity", "mean latency", "max latency"}, cells)
}

func runPurify(w io.Writer, opt options) error {
	// Representative end-to-end transmissivities: the space-ground floor
	// (two threshold links, 0.49), the measured space average (~0.72),
	// and the air-ground value (~0.92).
	rows, err := experiments.ExtensionPurificationStudy([]float64{0.49, 0.72, 0.92}, 3)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("purify.csv", func(f io.Writer) error { return experiments.PurificationCSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			fmt.Sprintf("%.2f", r.LinkEta),
			strconv.Itoa(r.Round),
			fmt.Sprintf("%.4f", r.Fidelity),
			fmt.Sprintf("%.3f", r.SuccessProbability),
			fmt.Sprintf("%.2f", r.ExpectedPairsConsumed),
		}
	}
	return experiments.RenderTable(w, "Extension — BBPSSW purification of distributed pairs",
		[]string{"path eta", "round", "fidelity", "p(success)", "raw pairs needed"}, cells)
}

func runQKD(w io.Writer, p qntn.Params, opt options) error {
	rows, err := experiments.ExtensionQKDStudy(p, qkd.DefaultDetector())
	if err != nil {
		return err
	}
	if err := opt.writeCSV("qkd.csv", func(f io.Writer) error { return experiments.QKDCSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Label,
			fmt.Sprintf("%.3f/%.3f", r.Eta1, r.Eta2),
			formatRate(r.BBM92KeyRateHz),
			formatRate(r.TrustedBB84KeyRateHz),
			fmt.Sprintf("%.2f%%", 100*r.QBER),
		}
	}
	return experiments.RenderTable(w, "Extension — QKD key rates (100 MHz source)",
		[]string{"geometry", "downlink etas", "BBM92 (untrusted)", "BB84 (trusted relay)", "QBER"}, cells)
}

// formatRate renders a key rate in bit/s with k/M scaling.
func formatRate(hz float64) string { return formatPerSecond(hz, "bit/s") }

// formatPairRate renders a delivered-pair rate in pairs/s.
func formatPairRate(hz float64) string { return formatPerSecond(hz, "pairs/s") }

func formatPerSecond(hz float64, unit string) string {
	switch {
	case hz >= 1e6:
		return fmt.Sprintf("%.2f M%s", hz/1e6, unit)
	case hz >= 1e3:
		return fmt.Sprintf("%.2f k%s", hz/1e3, unit)
	default:
		return fmt.Sprintf("%.1f %s", hz, unit)
	}
}

func runNight(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, duration time.Duration, opt options) error {
	rows, err := experiments.ExtensionNightStudy(p, orbit.MaxPaperSatellites, cfg, duration)
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		policy := "ideal (any time)"
		if r.NightOnly {
			policy = "night only"
		}
		cells[i] = []string{
			r.Architecture, policy,
			experiments.FormatPercent(r.CoveragePercent),
			experiments.FormatPercent(r.ServedPercent),
		}
	}
	return experiments.RenderTable(w, "Extension — daylight-background constraint (equinox sun, civil twilight)",
		[]string{"architecture", "operation", "coverage", "served"}, cells)
}

func runStatewide(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, duration time.Duration, parallel int) error {
	positions, connected, total, err := experiments.StatewidePlacement(p, 6)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "greedy HAP placement over the six-LAN region (%d/%d pairs reachable):\n", connected, total)
	for i, pos := range positions {
		fmt.Fprintf(w, "  HAP-%d at (%.3f°, %.3f°)\n", i+1, pos.LatDeg, pos.LonDeg)
	}
	fmt.Fprintln(w)

	rows, err := experiments.ExtensionStatewideStudyParallel(p, cfg, duration, []int{1, 2, 3}, parallel)
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			experiments.FormatPercent(r.ConnectedPairsPercent),
			experiments.FormatPercent(r.CoveragePercent),
			experiments.FormatPercent(r.ServedPercent),
		}
	}
	return experiments.RenderTable(w, "Extension — statewide six-LAN region (paper cities + Nashville, Memphis, Knoxville)",
		[]string{"architecture", "reachable pairs", "coverage", "served"}, cells)
}

func runOutage(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, duration time.Duration) error {
	rows, err := experiments.ExtensionOutageStudy(p, cfg, duration, []float64{0, 0.05, 0.1, 0.2, 0.4})
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			fmt.Sprintf("%.0f%%", 100*r.OutageProbability),
			experiments.FormatPercent(r.CoveragePercent),
			experiments.FormatPercent(r.ServedPercent),
			strconv.Itoa(r.Intervals),
		}
	}
	return experiments.RenderTable(w, "Extension — HAP outage sensitivity (air-ground)",
		[]string{"outage prob/step", "coverage", "served", "intervals"}, cells)
}

func runDegrade(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, opt options) error {
	sizes := []int{6, 24, 54, 108}
	levels := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if opt.quick {
		sizes = []int{6, 24}
		levels = []float64{0, 0.2}
	}
	rows, err := experiments.DegradationStudyParallel(p, cfg, opt.duration, sizes, levels, opt.parallel)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("degrade.csv", func(f io.Writer) error { return experiments.DegradationCSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		sats := "—"
		if r.Satellites > 0 {
			sats = strconv.Itoa(r.Satellites)
		}
		cells[i] = []string{
			r.Architecture, sats,
			fmt.Sprintf("%.0f%%", 100*r.Unavailability),
			experiments.FormatPercent(r.CoveragePercent),
			strconv.Itoa(r.Intervals),
			experiments.FormatPercent(r.ServedPercent),
			fmt.Sprintf("%.4f", r.MeanFidelity),
		}
	}
	return experiments.RenderTable(w, "Extension — graceful degradation under injected faults (platform outages + weather)",
		[]string{"architecture", "satellites", "unavailability", "coverage", "intervals", "served", "fidelity"}, cells)
}

func runMultipath(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, parallel int) error {
	rows, err := experiments.ExtensionMultipathStudyParallel(p, orbit.MaxPaperSatellites, cfg, 3, parallel)
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			strconv.Itoa(r.Paths),
			fmt.Sprintf("%.2f", r.MeanPathsFound),
			fmt.Sprintf("%.4f", r.MeanSuccessProbability),
		}
	}
	return experiments.RenderTable(w, "Extension — disjoint-path redundancy (hybrid: HAP + 108 satellites)",
		[]string{"path budget", "mean paths found", "P(at least one success)"}, cells)
}

func runProtocol(w io.Writer, p qntn.Params, cfg qntn.ServeConfig, opt options) error {
	// The study's protocol mix: lossy linear-optics-grade swaps and the
	// differential suite's draw seed, with memory quality and purification
	// budget as the grid axes.
	base := protocol.Config{SwapSuccess: 0.85, Seed: 5}
	sizes := []int{6, 24, 54, 108}
	t2s := []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	budgets := []int{1, 2, 4}
	if opt.quick {
		sizes = []int{6, 24}
		t2s = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
		budgets = []int{1, 3}
	}
	rows, err := experiments.ProtocolStudyParallel(p, cfg, base, sizes, t2s, budgets, opt.parallel)
	if err != nil {
		return err
	}
	if err := opt.writeCSV("protocol.csv", func(f io.Writer) error { return experiments.ProtocolCSV(f, rows) }); err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		proto := "off"
		if r.Enabled {
			proto = fmt.Sprintf("T2=%v k=%d", r.MemoryT2, r.PurifyPaths)
		}
		cells[i] = []string{
			r.Architecture,
			strconv.Itoa(r.Satellites),
			proto,
			experiments.FormatPercent(r.ServedPercent),
			fmt.Sprintf("%.4f", r.MeanFidelity),
			fmt.Sprintf("%.4f", r.MeanPathEta),
		}
	}
	return experiments.RenderTable(w, "Extension — entanglement protocol: T2 memories, swap chains, k-path purification",
		[]string{"architecture", "satellites", "protocol", "served", "fidelity", "path eta"}, cells)
}

func runThroughput(w io.Writer, p qntn.Params, cfg qntn.ServeConfig) error {
	const sourceRateHz = 1e6 // 1 MHz entangled-pair source
	rows, err := experiments.ExtensionThroughputStudy(p, orbit.MaxPaperSatellites, cfg, sourceRateHz)
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			formatPairRate(r.MeanServedPairRateHz),
			formatPairRate(r.MeanEffectiveRateHz),
			formatPairRate(r.WorstServedPairRateHz),
		}
	}
	return experiments.RenderTable(w, "Extension — delivered pair rates (1 MHz platform source)",
		[]string{"architecture", "mean (served)", "mean (all requests)", "worst served"}, cells)
}

func runArrivals(w io.Writer, p qntn.Params, duration time.Duration, seed int64) error {
	rows, err := experiments.ExtensionArrivalStudy(p, orbit.MaxPaperSatellites, duration, []float64{60, 240}, seed)
	if err != nil {
		return err
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			fmt.Sprintf("%.0f/h", r.RatePerHour),
			experiments.FormatPercent(r.ServedPercent),
			experiments.FormatPercent(r.ImmediatePercent),
			r.MeanWait.Truncate(time.Second).String(),
			strconv.Itoa(r.MaxQueueDepth),
			fmt.Sprintf("%.4f", r.MeanFidelity),
		}
	}
	return experiments.RenderTable(w, "Extension — Poisson arrivals through the DES (queueing dynamics)",
		[]string{"architecture", "rate", "served", "immediate", "mean wait", "max queue", "fidelity"}, cells)
}

// runWalker assembles a multi-shell Walker constellation — the global-scale
// scenario the spatial index makes tractable — and runs a coverage study
// over it. One instrumented snapshot reports the index's selectivity: the
// fraction of the n(n-1)/2 node pairs the candidate generator actually
// visited.
func runWalker(w io.Writer, p qntn.Params, opt options) error {
	shells, err := orbit.ParseWalkerShells(opt.walkerShells)
	if err != nil {
		return err
	}
	spec := qntn.WalkerSpec{Shells: shells, ISLGrid: opt.islGrid}
	switch opt.ground {
	case "", "paper":
	case "global":
		spec.Ground = qntn.GlobalGroundNetworks()
	default:
		return fmt.Errorf("unknown -ground %q (want paper or global)", opt.ground)
	}
	sc, err := qntn.NewWalker(spec, p)
	if err != nil {
		return err
	}
	nSats := 0
	for _, sh := range shells {
		nSats += sh.Count()
	}
	ground := opt.ground
	if ground == "" {
		ground = "paper"
	}
	fmt.Fprintf(w, "Walker constellation: %d satellites in %d shell(s), %d nodes total (isl-grid=%v, ground=%s)\n",
		nSats, len(shells), sc.Net.NumNodes(), opt.islGrid, ground)

	g := routing.NewGraph()
	var st netsim.SnapshotStats
	if err := sc.Net.SnapshotIntoStats(g, 0, &st); err != nil {
		return err
	}
	if st.Pairs > 0 {
		visited := int64(st.Pairs) - st.IndexCulled
		fmt.Fprintf(w, "snapshot at t=0: %d node pairs, %d visited after spatial-index culling (%.2f%%), %d links admitted\n",
			st.Pairs, visited, 100*float64(visited)/float64(st.Pairs), st.Admitted)
	}

	cov, err := sc.Coverage(opt.duration)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "coverage over %v: %s (%v covered across %d interval(s))\n",
		opt.duration, experiments.FormatPercent(cov.Percent()),
		cov.Covered.Truncate(time.Second), len(cov.Intervals))
	return nil
}
