package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qntn/internal/telemetry"
)

func TestRunFig5(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig. 5", "transmissivity", "0.90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable3Quick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "table3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table III", "space-ground", "air-ground", "100.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig6Quick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "fig6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "satellites") {
		t.Fatalf("fig6 output:\n%s", b.String())
	}
}

func TestRunPurify(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"purify"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "BBPSSW") {
		t.Fatalf("purify output:\n%s", b.String())
	}
}

func TestRunLatencyQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "latency"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "latency") || !strings.Contains(out, "ideal") {
		t.Fatalf("latency output:\n%s", out)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csvdir", dir, "fig5"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "transmissivity,fidelity_root") {
		t.Fatalf("csv content: %q", string(data[:60]))
	}
	// 101 data rows + header.
	if lines := strings.Count(string(data), "\n"); lines != 102 {
		t.Fatalf("csv line count %d", lines)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}, &b); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"-bogusflag", "fig5"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunQKD(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"qkd"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "BBM92") || !strings.Contains(out, "air-ground") {
		t.Fatalf("qkd output:\n%s", out)
	}
}

func TestRunNightQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "night"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "night only") {
		t.Fatalf("night output:\n%s", b.String())
	}
}

func TestRunParamsDumpAndLoad(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"params"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"wavelength_nm\": 532") {
		t.Fatalf("params dump:\n%s", b.String())
	}
	// Round trip through -params.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-params", path, "fig5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 5") {
		t.Fatal("fig5 with loaded params failed")
	}
	if err := run([]string{"-params", "/does/not/exist.json", "fig5"}, &out); err == nil {
		t.Fatal("missing params file accepted")
	}
}

func TestRunStatewideQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "statewide"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Memphis") || !strings.Contains(out, "space-ground (108 sats)") {
		t.Fatalf("statewide output:\n%s", out)
	}
}

func TestRunOutageQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "outage"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "outage prob/step") {
		t.Fatalf("outage output:\n%s", b.String())
	}
}

func TestRunDegradeQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "degrade"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graceful degradation", "unavailability", "space-ground", "air-ground", "20%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("degrade output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDegradeCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-quick", "-csvdir", dir, "degrade"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "degrade.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "architecture,satellites,unavailability,") {
		t.Fatalf("degrade.csv header wrong:\n%s", data)
	}
}

// TestRunFaultFlags drives a whole experiment through the fault flags: the
// faulted run must succeed and differ from the fault-free baseline, and
// the same flags must reproduce the same output.
func TestRunFaultFlags(t *testing.T) {
	var clean, faulted, again strings.Builder
	if err := run([]string{"-quick", "table3"}, &clean); err != nil {
		t.Fatal(err)
	}
	faultArgs := []string{"-quick", "-fault-mtbf", "1h", "-fault-mttr", "30m", "-weather-p", "0.3", "-fault-seed", "5", "table3"}
	if err := run(faultArgs, &faulted); err != nil {
		t.Fatal(err)
	}
	if clean.String() == faulted.String() {
		t.Fatal("fault flags changed nothing about table3")
	}
	if err := run(faultArgs, &again); err != nil {
		t.Fatal(err)
	}
	if faulted.String() != again.String() {
		t.Fatal("fault-injected run is not reproducible")
	}
}

func TestRunRejectsBadFaultFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-weather-p", "1.5", "table3"}, &b); err == nil {
		t.Fatal("out-of-range -weather-p accepted")
	}
	if err := run([]string{"-fault-mtbf", "-1h", "-quick", "table3"}, &b); err == nil {
		t.Fatal("negative -fault-mtbf accepted")
	}
}

func TestRunMultipathQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "multipath"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "path budget") {
		t.Fatalf("multipath output:\n%s", b.String())
	}
}

func TestRunThroughputQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "throughput"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pair rates") {
		t.Fatalf("throughput output:\n%s", b.String())
	}
}

func TestRunFig7AndFig8Quick(t *testing.T) {
	for _, fig := range []string{"fig7", "fig8"} {
		var b strings.Builder
		if err := run([]string{"-quick", fig}, &b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if !strings.Contains(out, "satellites") || !strings.Contains(out, "108") {
			t.Fatalf("%s output:\n%s", fig, out)
		}
	}
}

func TestRunCSVDirMultipleArtifacts(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-quick", "-csvdir", dir, "table3"}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table3.csv")); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-csvdir", dir, "fig6"}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunLatencyCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-quick", "-csvdir", dir, "latency"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "latency.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "architecture,memory_t2_s") {
		t.Fatalf("latency csv: %.60s", string(data))
	}
}

func TestRunQKDCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csvdir", dir, "qkd"}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "qkd.csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "purify.csv")); err == nil {
		t.Fatal("unexpected purify.csv from qkd subcommand")
	}
}

func TestRunPurifyCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-csvdir", dir, "purify"}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "purify.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations sweep takes ~a minute even in quick mode")
	}
	var b strings.Builder
	if err := run([]string{"-quick", "ablations"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"routing cost metric",
		"fidelity convention",
		"elevation mask",
		"source placement",
		"turbulence strength",
		"constellation design",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations output missing %q", want)
		}
	}
}

func TestRunArrivalsQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "arrivals"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max queue") {
		t.Fatalf("arrivals output:\n%s", b.String())
	}
}

// TestRunParallelFlagOutputInvariant pins the CLI determinism claim: a
// sweep subcommand prints byte-identical output for any -parallel value.
func TestRunParallelFlagOutputInvariant(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "2", "8"} {
		var b strings.Builder
		if err := run([]string{"-quick", "-parallel", workers, "fig6"}, &b); err != nil {
			t.Fatalf("-parallel %s: %v", workers, err)
		}
		outputs = append(outputs, b.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("fig6 output differs between -parallel 1 and -parallel %d:\n%s\nvs\n%s",
				[]int{1, 2, 8}[i], outputs[0], outputs[i])
		}
	}
}

// TestRunTelemetryDir drives -telemetry-dir/-events end to end: the run
// must leave a parseable manifest, both metric dumps and a valid event
// stream behind — and print exactly the same stdout as an uninstrumented
// run (the zero-interference claim at the CLI layer).
func TestRunTelemetryDir(t *testing.T) {
	var plain strings.Builder
	if err := run([]string{"-quick", "fig6"}, &plain); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var instrumented strings.Builder
	if err := run([]string{"-quick", "-telemetry-dir", dir, "-events", "fig6"}, &instrumented); err != nil {
		t.Fatal(err)
	}
	if instrumented.String() != plain.String() {
		t.Errorf("telemetry changed stdout:\n%s\nvs\n%s", instrumented.String(), plain.String())
	}

	f, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := telemetry.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Command != "fig6" {
		t.Errorf("manifest command %q", m.Command)
	}
	if len(m.ParamsHash) != 16 {
		t.Errorf("manifest params_hash %q", m.ParamsHash)
	}
	if m.GOMAXPROCS <= 0 || m.WallNs <= 0 {
		t.Errorf("manifest missing run shape: %+v", m)
	}
	if m.Summary["snapshot_steps_total"] <= 0 {
		t.Errorf("manifest summary lacks snapshot_steps_total: %v", m.Summary)
	}

	metrics, err := os.ReadFile(filepath.Join(dir, "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "counter snapshot_steps_total") {
		t.Errorf("metrics.txt:\n%s", metrics)
	}
	prom, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE qntn_snapshot_steps_total counter") {
		t.Errorf("metrics.prom:\n%s", prom)
	}

	ef, err := os.Open(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	events, err := telemetry.ReadNDJSON(ef)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
}

// TestRunTelemetryDirWithoutEvents: metrics only — no events.ndjson.
func TestRunTelemetryDirWithoutEvents(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-quick", "-telemetry-dir", dir, "table3"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "metrics.txt", "metrics.prom"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "events.ndjson")); err == nil {
		t.Error("events.ndjson written without -events")
	}
}

// TestRunEventsRequiresTelemetryDir: -events alone has nowhere to write.
func TestRunEventsRequiresTelemetryDir(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-events", "fig6"}, &b); err == nil {
		t.Fatal("-events without -telemetry-dir accepted")
	}
}

// TestRunParallelFlagRejected ensures flag parsing still catches garbage.
func TestRunParallelFlagRejected(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-parallel", "lots", "fig6"}, &b); err == nil {
		t.Fatal("non-numeric -parallel accepted")
	}
}

// TestServeDaemonBadAddr exercises the serve-daemon wiring up to the
// listener: an unparseable address must fail fast instead of hanging the
// command waiting for signals.
func TestServeDaemonBadAddr(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:notaport", "serve-daemon"}, &b); err == nil {
		t.Fatal("unusable -addr accepted")
	}
}

// TestUsageMentionsServeDaemon keeps the usage line in sync with the
// subcommand table.
func TestUsageMentionsServeDaemon(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if !strings.Contains(b.String(), "serve-daemon") {
		t.Fatalf("usage does not mention serve-daemon:\n%s", b.String())
	}
}
