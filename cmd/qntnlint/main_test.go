package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"qntn/internal/lint"
)

func diag() lint.Diagnostic {
	return lint.Diagnostic{
		Analyzer: "hotalloc",
		Position: token.Position{Filename: "internal/qntn/stepcache.go", Line: 42, Column: 7},
		Message:  "append may grow its backing array in //qntn:hotpath function qntn.Evaluate",
	}
}

func TestGHACommand(t *testing.T) {
	got := ghaCommand(diag())
	want := "::error file=internal/qntn/stepcache.go,line=42,col=7," +
		"title=qntnlint hotalloc::append may grow its backing array in //qntn:hotpath function qntn.Evaluate"
	if got != want {
		t.Errorf("ghaCommand:\n got %q\nwant %q", got, want)
	}
}

// TestGHACommandEscaping checks the Actions workflow-command escaping:
// %, CR and LF in the message; additionally : and , in properties.
func TestGHACommandEscaping(t *testing.T) {
	d := diag()
	d.Position.Filename = "a,b:c.go"
	d.Message = "50% of runs\nfail"
	got := ghaCommand(d)
	want := "::error file=a%2Cb%3Ac.go,line=42,col=7," +
		"title=qntnlint hotalloc::50%25 of runs%0Afail"
	if got != want {
		t.Errorf("ghaCommand escaping:\n got %q\nwant %q", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.json")
	if err := writeJSON(path, []lint.Diagnostic{diag()}); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != 1 || back[0] != diag() {
		t.Errorf("round-trip = %+v, want %+v", back, diag())
	}
}

// TestWriteJSONEmpty pins the empty report to [] rather than null, which
// is what makes the artifact safe for jq-style consumers.
func TestWriteJSONEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.json")
	if err := writeJSON(path, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "[]\n" {
		t.Errorf("empty report = %q, want %q", got, "[]\n")
	}
}
