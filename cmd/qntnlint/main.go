// Command qntnlint is the invariant-checking driver for the simulator: it
// runs go vet's standard passes plus the four project analyzers
// (unitsuffix, detrand, probrange, errcheckclose) over the given package
// patterns and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/qntnlint ./...
//	go run ./cmd/qntnlint -vet=false ./internal/geo ./internal/orbit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"qntn/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run 'go vet' over the same patterns")
	list := flag.Bool("analyzers", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: qntnlint [-vet=false] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		if err := runVet(patterns); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// runVet shells out to the go tool so qntnlint gates on the standard vet
// passes without depending on x/tools' unitchecker.
func runVet(patterns []string) error {
	args := append([]string{"vet"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: go vet %s: %v\n", strings.Join(patterns, " "), err)
		return err
	}
	return nil
}
