// Command qntnlint is the invariant-checking driver for the simulator: it
// runs go vet's standard passes plus the project analyzers (unitsuffix,
// detrand, probrange, errcheckclose, hotalloc, poolsafe, atomicmix) over
// the given package patterns and exits nonzero on any finding. The
// analyzers share a cross-package facts engine, so patterns are widened to
// their in-module dependency closure before analysis.
//
// Usage:
//
//	go run ./cmd/qntnlint ./...
//	go run ./cmd/qntnlint -vet=false ./internal/geo ./internal/orbit
//	go run ./cmd/qntnlint -json=lint.json -gha ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"qntn/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run 'go vet' over the same patterns")
	list := flag.Bool("analyzers", false, "list registered analyzers and exit")
	jsonOut := flag.String("json", "", "also write diagnostics as JSON to `file` (\"-\" for stdout)")
	gha := flag.Bool("gha", false, "emit GitHub Actions ::error workflow commands so findings annotate PR diffs")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: qntnlint [-vet=false] [-json=file] [-gha] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		if err := runVet(patterns); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
		if *gha {
			fmt.Println(ghaCommand(d))
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, diags); err != nil {
			fmt.Fprintf(os.Stderr, "qntnlint: %v\n", err)
			os.Exit(2)
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// ghaCommand renders a diagnostic as a GitHub Actions workflow command, so
// the runner attaches it to the matching line of the PR diff. Newlines and
// the command metacharacters must be percent-escaped per the Actions spec.
func ghaCommand(d lint.Diagnostic) string {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace
	propEsc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C").Replace
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=qntnlint %s::%s",
		propEsc(d.Position.Filename), d.Position.Line, d.Position.Column,
		propEsc(d.Analyzer), esc(d.Message))
}

// writeJSON emits the machine-readable findings report.
func writeJSON(path string, diags []lint.Diagnostic) error {
	if diags == nil {
		diags = []lint.Diagnostic{} // [] rather than null for consumers
	}
	out, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// runVet shells out to the go tool so qntnlint gates on the standard vet
// passes without depending on x/tools' unitchecker.
func runVet(patterns []string) error {
	args := append([]string{"vet"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "qntnlint: go vet %s: %v\n", strings.Join(patterns, " "), err)
		return err
	}
	return nil
}
