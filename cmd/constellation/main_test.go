package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qntn/internal/trace"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list", "-n", "12"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SAT-001") || !strings.Contains(out, "SAT-012") {
		t.Fatalf("list output:\n%s", out)
	}
	if strings.Contains(out, "SAT-013") {
		t.Fatal("list printed more satellites than requested")
	}
}

func TestRunExportsSheets(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sheets.csv")
	var b strings.Builder
	if err := run([]string{"-n", "6", "-duration", "10m", "-interval", "30s", "-out", out}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote 6 sheets") {
		t.Fatalf("status output:\n%s", b.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sheets, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 6 || len(sheets[0].Samples) != 21 {
		t.Fatalf("exported %d sheets, %d samples", len(sheets), len(sheets[0].Samples))
	}
}

func TestRunStdoutCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "6", "-duration", "1m", "-interval", "30s"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "name,t_seconds") {
		t.Fatalf("stdout csv missing header:\n%.80s", b.String())
	}
}

func TestRunCustomWalker(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-walker", "12/3/1", "-list"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SAT-012") {
		t.Fatalf("walker list output:\n%s", b.String())
	}
	if err := run([]string{"-walker", "nonsense"}, &b); err == nil {
		t.Fatal("bad walker spec accepted")
	}
	if err := run([]string{"-walker", "13/3/1"}, &b); err == nil {
		t.Fatal("indivisible walker accepted")
	}
}

func TestRunRejectsBadCount(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "7"}, &b); err == nil {
		t.Fatal("n=7 accepted")
	}
}
