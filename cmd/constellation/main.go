// Command constellation is the STK substitute of the paper's workflow: it
// builds the Table II Walker-Delta catalog (or a custom Walker
// configuration), propagates it, and exports per-satellite movement sheets
// as CSV for the simulator to replay.
//
// Usage:
//
//	constellation -n 108 -duration 24h -interval 30s -out sheets.csv
//	constellation -list                 # print the Table II catalog
//	constellation -walker 36/6/1        # custom Walker t/p/f instead of Table II
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
	"qntn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "constellation:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("constellation", flag.ContinueOnError)
	fs.SetOutput(w)
	n := fs.Int("n", orbit.MaxPaperSatellites, "number of Table II satellites (multiple of 6, ≤108)")
	duration := fs.Duration("duration", orbit.Day, "propagation span")
	interval := fs.Duration("interval", orbit.DefaultSampleInterval, "sample interval")
	out := fs.String("out", "", "output CSV path (default stdout)")
	list := fs.Bool("list", false, "print the orbital catalog instead of propagating")
	walker := fs.String("walker", "", "custom Walker t/p/f (e.g. 36/6/1) instead of Table II")
	altKM := fs.Float64("alt", 500, "altitude in km for -walker")
	incl := fs.Float64("incl", 53, "inclination in degrees for -walker")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var elems []orbit.Elements
	var err error
	if *walker != "" {
		var t, p, f int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*walker, "/", " "), "%d %d %d", &t, &p, &f); err != nil {
			return fmt.Errorf("bad -walker %q (want t/p/f): %w", *walker, err)
		}
		elems, err = orbit.WalkerDelta(t, p, f, *incl, *altKM*1000)
	} else {
		elems, err = orbit.PaperConstellation(*n)
	}
	if err != nil {
		return err
	}

	if *list {
		fmt.Fprintf(w, "%-8s %-10s %-12s %-10s %-8s\n", "sat", "RAAN(deg)", "anomaly(deg)", "alt(km)", "period")
		for i, e := range elems {
			fmt.Fprintf(w, "SAT-%03d  %-10.1f %-12.1f %-10.1f %v\n",
				i+1, geo.Deg(e.RAANRad), geo.Deg(e.TrueAnomalyRad),
				(e.SemiMajorAxisM-geo.EarthRadiusM)/1000, e.Period().Truncate(time.Second))
		}
		return nil
	}

	sheets, err := orbit.GenerateSheets(elems, *duration, *interval)
	if err != nil {
		return err
	}
	dst := w
	var sheetFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		sheetFile = f
		dst = f
	}
	werr := trace.Write(dst, sheets)
	if sheetFile != nil {
		if cerr := sheetFile.Close(); werr == nil {
			werr = cerr
		}
	}
	if werr != nil {
		return werr
	}
	if *out != "" {
		fmt.Fprintf(w, "wrote %d sheets (%d samples each) to %s\n",
			len(sheets), len(sheets[0].Samples), *out)
	}
	return nil
}
