module qntn

go 1.22
